"""The zero-copy dispatch battery: bit-identity, leaks, crash parity.

ISSUE 6's headline deliverable: the shared-memory dispatch path
(``EngineConfig.shared_memory``, the default for ``workers > 1``) must
be *indistinguishable* from the in-process and pickled paths in every
observable — per-pair scores, success flags, CIGARs, error channels and
the report's work counters — while leaving zero ``/dev/shm`` segments
behind after any batch, including batches whose workers were killed
mid-chunk (the PR 3 poison-backend scenarios replayed on the zero-copy
path).  The module-level twin is ``tests/align/test_arena.py``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.align.arena import leaked_segments
from repro.engine import (
    BatchAlignmentEngine,
    EngineConfig,
    align_pairs,
    register_backend,
)
from repro.engine.backends import _BACKENDS
from repro.engine.validation import ERROR_TIMEOUT, ERROR_WORKER_LOST
from repro.workloads import PairGenerator

from .test_fault_tolerance import POISON, FaultInjectionBackend, good_batch


@pytest.fixture()
def faulty():
    def install(**kwargs):
        backend = FaultInjectionBackend(**kwargs)
        register_backend(backend, replace=True)
        return backend

    yield install
    _BACKENDS.pop("faulty", None)


def _shm_entries() -> set[str]:
    root = Path("/dev/shm")
    if not root.is_dir():
        return set()
    return {e.name for e in root.iterdir() if e.name.startswith(("wfarena", "wfaring"))}


def _outcome_key(o):
    return (o.slot, o.score, o.success, o.cigar, o.ok, o.error_kind, o.error_msg)


def _report_key(r):
    return (
        r.num_pairs,
        r.pairs_aligned,
        r.cache_hits,
        r.coalesced,
        r.errors,
        r.rejected,
        r.swg_cells,
    )


def _mixed_batch(seed: int = 0, count: int = 24) -> list[tuple[str, str]]:
    """Generated pairs plus the boundary cases every path must agree on."""
    gen = PairGenerator(length=60, error_rate=0.08, seed=seed)
    batch = [(p.pattern, p.text) for p in gen.batch(count)]
    batch += [
        ("", ""),            # both empty
        ("", "ACGT"),        # empty pattern
        ("ACGT", ""),        # empty text
        ("A", "A"),          # minimal
        ("ACGT", "ACGT"),    # duplicate of a generated shape: coalescing
        ("ACGT", "ACGT"),
        ("ACGN", "ACGT"),    # unsupported read: pickled-reply path
        ("ACQT", "ACGT"),    # invalid charset: rejected before dispatch
    ]
    return batch


def _run(batch, *, backend, backtrace, workers, shared_memory=True):
    return align_pairs(
        batch,
        backend=backend,
        backtrace=backtrace,
        workers=workers,
        chunk_size=4,
        cache_size=0,
        shared_memory=shared_memory,
    )


class TestDifferentialBitIdentity:
    """shm == pickled == in-process, observable for observable."""

    @pytest.mark.parametrize("backend", ["scalar", "batched"])
    @pytest.mark.parametrize("backtrace", [False, True])
    def test_three_paths_agree(self, backend, backtrace):
        batch = _mixed_batch(seed=7)
        solo = _run(batch, backend=backend, backtrace=backtrace, workers=1)
        shm = _run(batch, backend=backend, backtrace=backtrace, workers=2)
        pickled = _run(
            batch, backend=backend, backtrace=backtrace, workers=2,
            shared_memory=False,
        )
        solo_key = [_outcome_key(o) for o in solo.outcomes]
        assert [_outcome_key(o) for o in shm.outcomes] == solo_key
        assert [_outcome_key(o) for o in pickled.outcomes] == solo_key
        assert _report_key(shm.report) == _report_key(solo.report)
        assert _report_key(pickled.report) == _report_key(solo.report)

    @pytest.mark.slow
    def test_wfasic_backend_agrees(self):
        batch = _mixed_batch(seed=11, count=12)
        solo = _run(batch, backend="wfasic", backtrace=True, workers=1)
        shm = _run(batch, backend="wfasic", backtrace=True, workers=2)
        assert [_outcome_key(o) for o in shm.outcomes] == [
            _outcome_key(o) for o in solo.outcomes
        ]
        assert _report_key(shm.report) == _report_key(solo.report)

    def test_golden_vectors_on_the_shm_path(self):
        # Anchors independent of the differential: an exact match and a
        # known single-substitution pair.
        res = _run(
            [("ACGTACGT", "ACGTACGT"), ("ACGTACGT", "ACGAACGT")],
            backend="scalar", backtrace=True, workers=2,
        )
        exact, sub = res.outcomes
        assert exact.ok and exact.success and exact.score == 0
        assert exact.cigar == "8M"
        assert sub.ok and sub.success and sub.score != 0
        assert sub.cigar.count("X") >= 1 or "8M" != sub.cigar

    def test_profile_carries_the_new_stages(self):
        res = _run(_mixed_batch(), backend="batched", backtrace=False, workers=2)
        profile = res.report.profile
        for stage in ("resolve", "dispatch", "execute", "ipc", "gather"):
            assert stage in profile, stage
        assert profile["ipc"]["seconds"] >= 0.0


class TestEngineArenaLifecycle:
    def test_no_arena_when_disabled_or_single_worker(self):
        cfg = EngineConfig(backend="batched", workers=1)
        with BatchAlignmentEngine(cfg) as engine:
            engine.align_batch(good_batch())
            assert engine._arena_pack is None
        cfg = EngineConfig(backend="batched", workers=2, shared_memory=False)
        with BatchAlignmentEngine(cfg) as engine:
            engine.align_batch(good_batch())
            assert engine._arena_pack is None

    def test_arena_persists_and_memoises_across_batches(self):
        cfg = EngineConfig(
            backend="batched", workers=2, chunk_size=2, cache_size=0
        )
        with BatchAlignmentEngine(cfg) as engine:
            engine.align_batch(good_batch())
            arena = engine._arena_pack.arena
            first_count = arena.interned
            names = arena.segment_names
            engine.align_batch(good_batch())
            # Same sequences again: pure memo hits, no new packing.
            assert arena.interned == first_count
            assert arena.hits >= first_count
            assert arena.segment_names == names

    def test_close_leaves_no_segments(self):
        before = _shm_entries()
        cfg = EngineConfig(backend="batched", workers=2, chunk_size=2)
        engine = BatchAlignmentEngine(cfg)
        try:
            engine.align_batch(_mixed_batch())
        finally:
            engine.close()
        assert _shm_entries() - before == set()
        assert leaked_segments() == []

    def test_rings_are_batch_scoped(self):
        # Arena segments persist across batches; ring segments must not.
        cfg = EngineConfig(backend="batched", workers=2, chunk_size=2)
        with BatchAlignmentEngine(cfg) as engine:
            engine.align_batch(good_batch())
            rings = [
                n for n in _shm_entries()
                if n.startswith(f"wfaring-{os.getpid()}-")
            ]
            assert rings == []


class TestFaultToleranceParity:
    """PR 3's poison scenarios, replayed on the zero-copy path."""

    @pytest.mark.parametrize("shared_memory", [True, False])
    def test_raise_isolated_per_pair(self, faulty, shared_memory):
        faulty(mode="raise")
        batch = good_batch()[:2] + [(POISON, POISON)] + good_batch()[2:]
        res = align_pairs(
            batch, backend="faulty", workers=2, chunk_size=2, cache_size=0,
            shared_memory=shared_memory,
        )
        assert not res.outcomes[2].ok
        good = [o for i, o in enumerate(res.outcomes) if i != 2]
        assert all(o.ok and o.success for o in good)
        assert res.report.errors == 1

    def test_error_channel_identical_across_paths(self, faulty):
        faulty(mode="raise")
        batch = good_batch() + [(POISON, POISON)]
        runs = [
            align_pairs(
                batch, backend="faulty", workers=workers, chunk_size=2,
                cache_size=0, shared_memory=shm,
            )
            for workers, shm in ((1, True), (2, True), (2, False))
        ]
        keys = [[_outcome_key(o) for o in r.outcomes] for r in runs]
        assert keys[1] == keys[0]
        assert keys[2] == keys[0]

    @pytest.mark.slow
    def test_worker_death_on_shm_path_quarantines_and_leaks_nothing(
        self, faulty
    ):
        before = _shm_entries()
        faulty(mode="exit")
        batch = good_batch() + [(POISON, POISON)] + good_batch()
        res = align_pairs(
            batch, backend="faulty", workers=2, chunk_size=2, cache_size=0,
            chunk_timeout=3.0, max_chunk_retries=1, shared_memory=True,
        )
        for idx, (a, b) in enumerate(batch):
            o = res.outcomes[idx]
            if a == POISON:
                assert not o.ok
                assert o.error_kind == ERROR_WORKER_LOST
            else:
                assert o.ok and o.score == len(a) + len(b), (idx, o)
        assert res.report.errors == 1
        assert res.report.retries >= 1
        assert _shm_entries() - before == set()
        assert leaked_segments() == []

    @pytest.mark.slow
    def test_transient_worker_death_recovers_on_shm_path(
        self, faulty, tmp_path
    ):
        faulty(mode="exit", crash_once_path=str(tmp_path / "crashed.marker"))
        batch = good_batch() + [(POISON, POISON)]
        res = align_pairs(
            batch, backend="faulty", workers=2, chunk_size=2, cache_size=0,
            chunk_timeout=3.0, max_chunk_retries=2, shared_memory=True,
        )
        assert all(o.ok for o in res.outcomes)
        assert res.outcomes[-1].score == 2 * len(POISON)
        assert res.report.retries >= 1
        assert leaked_segments() == []

    @pytest.mark.slow
    def test_hung_worker_times_out_on_shm_path(self, faulty):
        before = _shm_entries()
        faulty(mode="hang")
        batch = good_batch() + [(POISON, POISON)]
        res = align_pairs(
            batch, backend="faulty", workers=2, chunk_size=2, cache_size=0,
            chunk_timeout=1.5, max_chunk_retries=0, shared_memory=True,
        )
        hung = res.outcomes[-1]
        assert not hung.ok
        assert hung.error_kind == ERROR_TIMEOUT
        for o, (a, b) in zip(res.outcomes, batch):
            if a != POISON:
                assert o.ok and o.score == len(a) + len(b)
        assert _shm_entries() - before == set()

    def test_unusable_pool_degrades_in_process(self, faulty, monkeypatch):
        faulty(mode="raise")
        monkeypatch.setattr(
            BatchAlignmentEngine,
            "_ensure_pool",
            lambda self: (_ for _ in ()).throw(OSError("no processes left")),
        )
        batch = good_batch() + [(POISON, POISON)]
        res = align_pairs(
            batch, backend="faulty", workers=2, chunk_size=2, cache_size=0,
            shared_memory=True,
        )
        assert [o.ok for o in res.outcomes] == [True] * 5 + [False]
        assert leaked_segments() == []


class TestInterruptedStream:
    """ISSUE 8 satellite 3: interrupting a streamed CLI run is clean.

    A SIGTERM (or Ctrl-C) mid-`--stream-chunk` must take the orderly
    exit: the engine context manager still tears down (pool joined, no
    ``/dev/shm`` segment left behind) and the partial merged report
    over the chunks that completed is still printed, with exit code
    130.  Subprocess-based — signals and ``/dev/shm`` lifetimes only
    mean anything across a real process boundary.
    """

    SRC_DIR = Path(__file__).resolve().parents[2] / "src"

    def _spawn_stream(self, tmp_path, num_pairs):
        import subprocess
        import sys

        seq = tmp_path / "stream.seq"
        gen = PairGenerator(length=600, error_rate=0.08, seed=7)
        lines = []
        for pair in gen.batch(num_pairs):
            lines += [f">{pair.pattern}", f"<{pair.text}"]
        seq.write_text("\n".join(lines) + "\n", encoding="ascii")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(self.SRC_DIR)
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "batch", str(seq),
                "--stream-chunk", "4", "--workers", "2", "--chunk-size", "2",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def test_sigterm_keeps_partial_report_and_leaks_nothing(self, tmp_path):
        import signal as signal_module
        import time

        before = _shm_entries()
        proc = self._spawn_stream(tmp_path, num_pairs=4000)
        try:
            time.sleep(3.0)  # engine up, several chunks through
            proc.send_signal(signal_module.SIGTERM)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, stderr
        assert "interrupted" in stderr
        # The partial merged report survived: result rows plus the
        # describe() footer over however many chunks completed.
        assert "pairs=" in stdout, stdout
        assert "pair_id\tscore" in stdout
        assert _shm_entries() - before == set()
        assert leaked_segments(proc.pid) == []

    def test_sigterm_before_any_chunk_is_still_clean(self, tmp_path):
        import signal as signal_module

        before = _shm_entries()
        proc = self._spawn_stream(tmp_path, num_pairs=4000)
        try:
            proc.send_signal(signal_module.SIGTERM)  # likely pre-engine
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        # Either nothing completed (the bare notice) or some chunks
        # did (the partial report) — both exit 130 and leak nothing.
        assert proc.returncode in (130, -15), stderr
        assert _shm_entries() - before == set()
        assert leaked_segments(proc.pid) == []
