"""Engine-level tests for adaptive wavefront banding.

The engine contract under ``EngineConfig.band_width``:

* only band-capable backends accept it (config validation),
* results are bit-identical to exact when the band covers the optimum,
* a banded run that reports ``reached_end=False`` is transparently
  re-aligned exact and counted (``BatchReport.band_fallbacks`` and the
  ``engine_band_fallbacks_total`` metric),
* banding composes with the per-pair error channels, the zero-copy
  parallel path, and the result cache (band-specific keys).
"""

import random
from dataclasses import replace as dc_replace

import pytest

from repro.align import BatchedWfaAligner, DEFAULT_PENALTIES, WfaAligner
from repro.engine import (
    AlignmentCache,
    BatchAlignmentEngine,
    EngineConfig,
    align_pairs,
)
from repro.engine import backends as backends_mod
from repro.obs import MetricsRegistry, set_registry
from tests.util import random_pair


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Scope published metrics to each test."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    yield registry
    set_registry(previous)


def _workload(seed: int, count: int = 24) -> list[tuple[str, str]]:
    rng = random.Random(seed)
    return [random_pair(rng, rng.randint(0, 200), 0.1) for _ in range(count)]


class TestConfigValidation:
    def test_band_needs_capable_backend(self):
        with pytest.raises(ValueError, match="does not support band_width"):
            EngineConfig(backend="vectorized", band_width=8)
        with pytest.raises(ValueError, match="does not support band_width"):
            EngineConfig(backend="swg", band_width=8)

    def test_band_width_must_be_positive(self):
        with pytest.raises(ValueError, match="band_width"):
            EngineConfig(backend="batched", band_width=0)

    def test_capable_backends_accept_band(self):
        for backend in ("scalar", "batched"):
            cfg = EngineConfig(backend=backend, band_width=8)
            assert cfg.band_width == 8

    def test_supports_band_flags(self):
        assert backends_mod.get_backend("scalar").supports_band
        assert backends_mod.get_backend("batched").supports_band
        assert not backends_mod.get_backend("vectorized").supports_band


class TestBandedOutcomes:
    @pytest.mark.parametrize("backend", ["scalar", "batched"])
    def test_wide_band_bit_identical_to_exact(self, backend):
        pairs = _workload(1)
        exact = align_pairs(pairs, backend=backend, backtrace=True, cache_size=0)
        banded = align_pairs(
            pairs,
            backend=backend,
            backtrace=True,
            cache_size=0,
            band_width=1000,
        )
        assert banded.scores == exact.scores
        assert [o.cigar for o in banded.outcomes] == [
            o.cigar for o in exact.outcomes
        ]
        assert banded.report.band_fallbacks == 0

    @pytest.mark.parametrize("backend", ["scalar", "batched"])
    def test_narrow_band_is_pessimistic_never_optimistic(self, backend):
        pairs = _workload(2)
        exact = align_pairs(pairs, backend=backend, cache_size=0)
        banded = align_pairs(
            pairs, backend=backend, cache_size=0, band_width=2
        )
        assert all(b >= e for b, e in zip(banded.scores, exact.scores))

    def test_scalar_and_batched_agree_banded(self):
        pairs = _workload(3)
        for bw in (2, 16):
            s = align_pairs(
                pairs, backend="scalar", backtrace=True, cache_size=0,
                band_width=bw,
            )
            b = align_pairs(
                pairs, backend="batched", backtrace=True, cache_size=0,
                band_width=bw,
            )
            assert s.scores == b.scores
            assert [o.cigar for o in s.outcomes] == [
                o.cigar for o in b.outcomes
            ]

    def test_peak_wavefront_bytes_reported(self):
        pairs = _workload(4, count=8)
        res = align_pairs(
            pairs, backend="batched", cache_size=0, band_width=8
        )
        assert res.report.peak_wavefront_bytes > 0
        assert (
            res.report.as_dict()["peak_wavefront_bytes"]
            == res.report.peak_wavefront_bytes
        )
        # The batched backend reports the counter unbanded too — the
        # baseline rides the same channel the banded runs use.
        exact = align_pairs(pairs, backend="batched", cache_size=0)
        assert exact.report.peak_wavefront_bytes > res.report.peak_wavefront_bytes


class _FailBandedBatched(BatchedWfaAligner):
    """Banded runs all come back dead — forces the fallback path."""

    def align_batch(self, pairs):
        results = super().align_batch(pairs)
        if self.band_width is not None:
            return [
                dc_replace(r, score=-1, cigar=None, reached_end=False)
                for r in results
            ]
        return results


class _FailBandedScalar(WfaAligner):
    def align(self, a, b):
        result = super().align(a, b)
        if self.band_width is not None:
            return dc_replace(
                result, score=-1, cigar=None, reached_end=False
            )
        return result


class TestBandFallback:
    """Every pair's band dies -> every pair is re-aligned exact."""

    @pytest.mark.parametrize(
        "backend,patch_name,fail_cls",
        [
            ("batched", "BatchedWfaAligner", _FailBandedBatched),
            ("scalar", "WfaAligner", _FailBandedScalar),
        ],
    )
    def test_dead_band_degrades_to_exact(
        self, monkeypatch, _fresh_registry, backend, patch_name, fail_cls
    ):
        monkeypatch.setattr(backends_mod, patch_name, fail_cls)
        if backend == "scalar":
            # The scalar backend's unbanded path goes through aligner_cls.
            monkeypatch.setattr(
                backends_mod.ScalarWfaBackend, "aligner_cls", fail_cls
            )
        pairs = _workload(5, count=10)
        exact = align_pairs(pairs, backend=backend, backtrace=True, cache_size=0)
        banded = align_pairs(
            pairs, backend=backend, backtrace=True, cache_size=0, band_width=32
        )
        assert banded.scores == exact.scores
        assert [o.cigar for o in banded.outcomes] == [
            o.cigar for o in exact.outcomes
        ]
        assert banded.report.band_fallbacks == len(pairs)
        assert banded.report.as_dict()["band_fallbacks"] == len(pairs)
        counter = _fresh_registry.counter("engine_band_fallbacks_total")
        assert counter.value({"backend": backend}) == len(pairs)

    def test_no_fallbacks_without_banding(self, _fresh_registry):
        pairs = _workload(6, count=6)
        res = align_pairs(pairs, backend="batched", cache_size=0)
        assert res.report.band_fallbacks == 0


class TestBandComposition:
    def test_error_channel_composes(self):
        """A malformed pair errors per-pair; banded neighbours still align."""
        pairs = [("ACGT", "ACGT"), ("AXGT", "ACGT"), ("GGG", "GGC")]
        res = align_pairs(
            pairs, backend="batched", cache_size=0, band_width=8
        )
        assert not res.outcomes[1].ok
        assert res.outcomes[0].ok and res.outcomes[2].ok
        assert res.report.errors == 1 and res.report.rejected == 1

    def test_parallel_shm_dispatch_composes(self):
        pairs = _workload(7, count=30)
        serial = align_pairs(
            pairs, backend="batched", backtrace=True, cache_size=0,
            band_width=64,
        )
        with BatchAlignmentEngine(
            EngineConfig(
                backend="batched",
                workers=2,
                chunk_size=8,
                backtrace=True,
                cache_size=0,
                shared_memory=True,
                band_width=64,
            )
        ) as engine:
            parallel = engine.align_batch(pairs)
        assert parallel.scores == serial.scores
        assert [o.cigar for o in parallel.outcomes] == [
            o.cigar for o in serial.outcomes
        ]

    def test_cache_key_is_band_specific(self):
        k_exact = AlignmentCache.make_key(
            "batched", "ACGT", "ACGT", DEFAULT_PENALTIES, False
        )
        k_banded = AlignmentCache.make_key(
            "batched", "ACGT", "ACGT", DEFAULT_PENALTIES, False, 8
        )
        assert k_exact != k_banded

    def test_banded_cache_hits_are_stable(self):
        pairs = _workload(8, count=8)
        cfg = EngineConfig(backend="batched", band_width=4, cache_size=64)
        with BatchAlignmentEngine(cfg) as engine:
            first = engine.align_batch(pairs)
            second = engine.align_batch(pairs)
        assert second.report.cache_hits == len(pairs)
        assert second.scores == first.scores
