"""Tests for the engine's backend registry and the shipped backends."""

import random

import pytest

from repro.align import Cigar, DEFAULT_PENALTIES, swg_align
from repro.engine import (
    AlignmentBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.engine.backends import _BACKENDS, PairOutcome
from tests.util import assert_valid_cigar, random_pair


class TestRegistry:
    def test_shipped_backends_present(self):
        assert {"scalar", "vectorized", "batched", "swg", "wfasic"} <= set(
            backend_names()
        )

    def test_unknown_backend_lists_alternatives(self):
        with pytest.raises(KeyError, match="scalar"):
            get_backend("no-such-backend")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError):
            register_backend(get_backend("scalar"))

    def test_register_and_replace(self):
        class Fake(AlignmentBackend):
            name = "fake-for-test"

            def align_chunk(self, items, penalties, backtrace):
                return [PairOutcome(slot, 0) for slot, _, _ in items]

        try:
            register_backend(Fake())
            assert "fake-for-test" in backend_names()
            register_backend(Fake(), replace=True)  # idempotent with replace
        finally:
            _BACKENDS.pop("fake-for-test", None)


class TestBackendContracts:
    @pytest.fixture(scope="class")
    def chunk(self):
        rng = random.Random(5)
        items = []
        for slot, (length, rate) in enumerate(
            [(0, 0.0), (1, 0.5), (30, 0.05), (90, 0.15), (90, 0.0)]
        ):
            a, b = random_pair(rng, length, rate)
            items.append((slot * 10, a, b))  # sparse slots must round-trip
        return items

    @pytest.mark.parametrize(
        "name", ["scalar", "vectorized", "batched", "swg", "wfasic"]
    )
    def test_scores_match_oracle(self, name, chunk):
        outcomes = get_backend(name).align_chunk(
            chunk, DEFAULT_PENALTIES, backtrace=False
        )
        assert [o.slot for o in outcomes] == [slot for slot, _, _ in chunk]
        for (_, a, b), outcome in zip(chunk, outcomes):
            assert outcome.success
            assert outcome.score == swg_align(a, b).score
            assert outcome.cigar is None  # backtrace off

    @pytest.mark.parametrize(
        "name", ["scalar", "vectorized", "batched", "swg", "wfasic"]
    )
    def test_backtrace_cigars_valid(self, name, chunk):
        outcomes = get_backend(name).align_chunk(
            chunk, DEFAULT_PENALTIES, backtrace=True
        )
        for (_, a, b), outcome in zip(chunk, outcomes):
            if not a and not b:
                # The empty alignment has a CIGAR: the empty string.
                assert outcome.cigar == ""
                assert_valid_cigar(
                    Cigar.from_compact(outcome.cigar), a, b,
                    DEFAULT_PENALTIES, outcome.score,
                )
                continue
            assert_valid_cigar(
                Cigar.from_compact(outcome.cigar), a, b,
                DEFAULT_PENALTIES, outcome.score,
            )


class TestWfasicHardwareLimits:
    def test_overlong_read_fails_cleanly(self):
        # The wfasic backend inherits the hardware MAX_READ_LEN: a read
        # past 10 kbp is rejected with success=False, not mis-scored.
        long_seq = "A" * 10_017
        outcomes = get_backend("wfasic").align_chunk(
            [(0, long_seq, long_seq)], DEFAULT_PENALTIES, backtrace=False
        )
        assert outcomes[0].success is False
        assert outcomes[0].score == 0


class TestBatchedBackendSpecifics:
    def test_profiled_chunk_returns_stage_counters(self):
        rng = random.Random(17)
        items = [
            (slot, *random_pair(rng, 40, 0.1)) for slot in range(6)
        ]
        outcomes, profile = get_backend("batched").align_chunk_profiled(
            items, DEFAULT_PENALTIES, backtrace=True
        )
        assert [o.slot for o in outcomes] == list(range(6))
        assert profile is not None
        for stage in ("pack", "compute", "extend", "backtrace"):
            assert stage in profile
            assert profile[stage]["calls"] >= 1

    def test_default_profiled_wrapper_has_no_profile(self):
        outcomes, profile = get_backend("scalar").align_chunk_profiled(
            [(0, "ACGT", "ACGT")], DEFAULT_PENALTIES, backtrace=False
        )
        assert outcomes[0].score == 0
        assert profile is None

    def test_pack_cache_shared_across_chunks(self):
        from repro.engine.backends import _PACK_CACHE

        backend = get_backend("batched")
        items = [(0, "ACGTACGTAA", "ACGTACGTAA")]
        backend.align_chunk(items, DEFAULT_PENALTIES, backtrace=False)
        hits_before = _PACK_CACHE.hits
        backend.align_chunk(items, DEFAULT_PENALTIES, backtrace=False)
        assert _PACK_CACHE.hits >= hits_before + 2  # pattern + text rows
