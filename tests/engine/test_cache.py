"""Tests for the engine's LRU result cache."""

import pytest

from repro.align import AffinePenalties, DEFAULT_PENALTIES
from repro.engine import AlignmentCache
from repro.engine.backends import PairOutcome


def key(pattern, text, *, backend="scalar", penalties=DEFAULT_PENALTIES,
        backtrace=False):
    return AlignmentCache.make_key(backend, pattern, text, penalties, backtrace)


class TestLruSemantics:
    def test_hit_after_put(self):
        cache = AlignmentCache(4)
        cache.put(key("AC", "AC"), (0, True, None))
        assert cache.get(key("AC", "AC")) == (0, True, None)
        assert cache.stats.hits == 1

    def test_miss_counted(self):
        cache = AlignmentCache(4)
        assert cache.get(key("AC", "AC")) is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_eviction_drops_least_recently_used(self):
        cache = AlignmentCache(2)
        cache.put(key("A", "A"), (1, True, None))
        cache.put(key("C", "C"), (2, True, None))
        cache.get(key("A", "A"))  # refresh A: C becomes the LRU tail
        cache.put(key("G", "G"), (3, True, None))
        assert cache.stats.evictions == 1
        assert cache.get(key("C", "C")) is None
        assert cache.get(key("A", "A")) == (1, True, None)
        assert cache.get(key("G", "G")) == (3, True, None)

    def test_zero_capacity_disables_storage(self):
        cache = AlignmentCache(0)
        cache.put(key("A", "A"), (1, True, None))
        assert len(cache) == 0
        assert cache.get(key("A", "A")) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            AlignmentCache(-1)

    def test_clear_keeps_counters(self):
        cache = AlignmentCache(4)
        cache.put(key("A", "A"), (1, True, None))
        cache.get(key("A", "A"))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_put_outcome_round_trip(self):
        cache = AlignmentCache(4)
        cache.put_outcome(key("AC", "AG"), PairOutcome(0, 4, True, "1M1X"))
        assert cache.get(key("AC", "AG")) == (4, True, "1M1X")


class TestKeying:
    def test_key_separates_penalties(self):
        cache = AlignmentCache(4)
        other = AffinePenalties(2, 3, 1)
        cache.put(key("AC", "AG"), (4, True, None))
        assert cache.get(key("AC", "AG", penalties=other)) is None

    def test_key_separates_backend_and_backtrace(self):
        cache = AlignmentCache(4)
        cache.put(key("AC", "AG"), (4, True, None))
        assert cache.get(key("AC", "AG", backend="swg")) is None
        assert cache.get(key("AC", "AG", backtrace=True)) is None

    def test_key_separates_pattern_text_roles(self):
        cache = AlignmentCache(4)
        cache.put(key("AAC", "AG"), (4, True, None))
        assert cache.get(key("AG", "AAC")) is None
