"""Tests for the batch alignment engine: sharding, caching, counters."""

import pytest

from repro.align import AffinePenalties, swg_align
from repro.engine import (
    AlignmentBackend,
    BatchAlignmentEngine,
    EngineConfig,
    align_pairs,
    register_backend,
)
from repro.engine.backends import _BACKENDS, PairOutcome
from repro.workloads import PairGenerator


@pytest.fixture()
def pairs():
    return PairGenerator(length=60, error_rate=0.1, seed=21).batch(10)


class TestConfigValidation:
    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            EngineConfig(backend="bogus")

    @pytest.mark.parametrize(
        "field, value",
        [("workers", 0), ("chunk_size", 0), ("cache_size", -1)],
    )
    def test_bounds(self, field, value):
        with pytest.raises(ValueError):
            EngineConfig(**{field: value})


class TestSerialPath:
    def test_scores_in_input_order(self, pairs):
        res = align_pairs(pairs, backend="vectorized")
        expected = [swg_align(p.pattern, p.text).score for p in pairs]
        assert res.scores == expected
        assert [o.slot for o in res.outcomes] == list(range(len(pairs)))

    def test_accepts_plain_tuples(self):
        res = align_pairs([("ACGT", "ACGT"), ("AAAA", "TTTT")])
        assert res.scores == [0, 16]

    def test_empty_batch(self):
        res = align_pairs([])
        assert res.outcomes == []
        assert res.report.num_pairs == 0
        assert res.report.pairs_per_second == 0.0
        assert res.report.cache_hit_rate == 0.0

    def test_report_counters(self, pairs):
        res = align_pairs(pairs, backend="vectorized", chunk_size=3)
        rep = res.report
        assert rep.num_pairs == len(pairs)
        assert rep.pairs_aligned == len(pairs)
        assert rep.swg_cells == sum(
            len(p.pattern) * len(p.text) for p in pairs
        )
        assert rep.pairs_per_second > 0
        assert rep.gcups > 0
        assert 0 < rep.worker_utilisation <= 1.05
        assert "pairs/s" in rep.describe()
        assert rep.as_dict()["num_pairs"] == len(pairs)

    def test_report_profile_stages(self, pairs):
        # Engine-side stages are always recorded; backend stages join in
        # when the backend reports them (the batched path does).
        rep = align_pairs(pairs, backend="vectorized").report
        for stage in ("resolve", "dispatch", "ipc", "gather"):
            assert stage in rep.profile, rep.profile
        assert rep.as_dict()["profile"] == rep.profile

        rep = align_pairs(pairs, backend="batched").report
        for stage in ("resolve", "dispatch", "pack", "compute", "extend"):
            assert stage in rep.profile, rep.profile
        assert "stage" in rep.describe_profile()


class TestParallelPath:
    def test_matches_serial(self, pairs):
        serial = align_pairs(pairs, backend="vectorized", workers=1)
        parallel = align_pairs(
            pairs, backend="vectorized", workers=2, chunk_size=2
        )
        assert parallel.scores == serial.scores
        assert parallel.report.workers == 2

    def test_pool_reused_across_batches(self, pairs):
        config = EngineConfig(backend="vectorized", workers=2, chunk_size=4)
        with BatchAlignmentEngine(config) as engine:
            first = engine.align_batch(pairs)
            pool = engine._pool
            second = engine.align_batch(pairs[::-1])
            assert engine._pool is pool
        assert engine._pool is None  # context exit closed it
        assert first.scores == second.scores[::-1]

    def test_close_is_idempotent(self, pairs):
        engine = BatchAlignmentEngine(EngineConfig(workers=2))
        engine.align_batch(pairs[:2])
        engine.close()
        engine.close()


class CountingBackend(AlignmentBackend):
    """Test double: counts alignments actually performed."""

    name = "counting"

    def __init__(self):
        self.calls = 0
        self.pairs_aligned = 0

    def align_chunk(self, items, penalties, backtrace):
        self.calls += 1
        self.pairs_aligned += len(items)
        return [
            PairOutcome(slot, score=len(a) + len(b))
            for slot, a, b in items
        ]


@pytest.fixture()
def counting_backend():
    backend = CountingBackend()
    register_backend(backend, replace=True)
    yield backend
    _BACKENDS.pop("counting", None)


class TestCachingAndCoalescing:
    def test_within_batch_duplicates_coalesced(self, counting_backend):
        batch = [("ACGT", "ACGT")] * 7 + [("AAAA", "AAAA")] * 3
        res = align_pairs(batch, backend="counting", chunk_size=100)
        assert counting_backend.pairs_aligned == 2
        assert res.report.coalesced == 8
        assert res.report.pairs_aligned == 2
        assert res.scores == [8] * 10

    def test_cache_hits_across_batches(self, counting_backend):
        config = EngineConfig(backend="counting", cache_size=64)
        with BatchAlignmentEngine(config) as engine:
            engine.align_batch([("ACGT", "ACGT"), ("AAAA", "TTTT")])
            res = engine.align_batch([("ACGT", "ACGT"), ("CCCC", "CCCC")])
        assert res.report.cache_hits == 1
        assert res.report.pairs_aligned == 1
        assert counting_backend.pairs_aligned == 3

    def test_cache_disabled(self, counting_backend):
        config = EngineConfig(backend="counting", cache_size=0)
        with BatchAlignmentEngine(config) as engine:
            engine.align_batch([("ACGT", "ACGT")])
            res = engine.align_batch([("ACGT", "ACGT")])
        assert res.report.cache_hits == 0
        # Coalescing still works without a cache...
        res = align_pairs(
            [("ACGT", "ACGT")] * 4, backend="counting", cache_size=0
        )
        assert res.report.coalesced == 3

    def test_chunking_splits_dispatch(self, counting_backend):
        batch = [("ACGT", "ACGT" + "A" * i) for i in range(10)]
        align_pairs(batch, backend="counting", chunk_size=3)
        assert counting_backend.calls == 4  # ceil(10 / 3)

    def test_penalties_reach_cache_key(self):
        # Same pair, different penalties: results must not bleed over.
        config = EngineConfig(backend="swg", cache_size=64)
        other = EngineConfig(
            backend="swg",
            cache_size=64,
            penalties=AffinePenalties(1, 0, 1),
        )
        pair = [("AAAA", "TTTT")]
        assert align_pairs(pair, backend="swg").scores == [16]
        with BatchAlignmentEngine(other) as engine:
            assert engine.align_batch(pair).scores == [4]
        with BatchAlignmentEngine(config) as engine:
            assert engine.align_batch(pair).scores == [16]
