"""Fault-injection tests for the batch engine's isolation guarantees.

The contract under test (ISSUE 3 / DESIGN.md "error handling contract"):
a batch containing malformed or crashing pairs returns per-pair
structured errors for exactly those pairs and bit-identical results for
all others, across backends and worker counts — ``align_pairs`` never
raises for per-pair data errors unless ``strict=True``.

The :class:`FaultInjectionBackend` crashes in configurable ways when it
sees a poison pattern.  The process-killing modes (``exit``/``hang``)
only fire inside worker processes (``multiprocessing.parent_process()``
is not ``None``) and raise a plain exception in the engine process, so
quarantine replay can be exercised without ever killing the test run.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.engine import (
    AlignmentBackend,
    BatchAlignmentEngine,
    EngineConfig,
    align_pairs,
    register_backend,
)
from repro.engine.backends import _BACKENDS, PairOutcome
from repro.engine.validation import (
    ERROR_BACKEND,
    ERROR_INVALID_BASE,
    ERROR_TIMEOUT,
    ERROR_UNSUPPORTED_READ,
    ERROR_WORKER_LOST,
)

#: Valid DNA, so the poison pair sails through validation and reaches
#: the backend — the fault is the backend's, not the input's.
POISON = "GATTACAGATTACAGA"


class FaultInjectionBackend(AlignmentBackend):
    """Deterministic backend that fails on the poison pattern.

    ``mode``:
      * ``"raise"`` — plain Python exception (everywhere),
      * ``"exit"``  — ``os._exit`` in worker processes (hard death),
      * ``"hang"``  — sleeps forever in worker processes.

    ``crash_once_path``: with ``"exit"``, crash only while this marker
    file does not exist (created just before dying), so the first
    resubmission succeeds — simulating a transient worker loss.
    """

    name = "faulty"

    def __init__(self, mode: str = "raise", crash_once_path: str | None = None):
        self.mode = mode
        self.crash_once_path = crash_once_path

    def _in_worker(self) -> bool:
        return multiprocessing.parent_process() is not None

    def align_chunk(self, items, penalties, backtrace):
        out = []
        for slot, a, b in items:
            if a == POISON and self.mode != "none":
                if self.mode == "exit" and self._in_worker():
                    if self.crash_once_path is None:
                        os._exit(17)
                    if not os.path.exists(self.crash_once_path):
                        with open(self.crash_once_path, "w"):
                            pass
                        os._exit(17)
                elif self.mode == "hang" and self._in_worker():
                    time.sleep(600)
                else:
                    raise RuntimeError(f"injected fault at slot {slot}")
            out.append(PairOutcome(slot, score=len(a) + len(b)))
        return out


@pytest.fixture()
def faulty():
    def install(**kwargs):
        backend = FaultInjectionBackend(**kwargs)
        register_backend(backend, replace=True)
        return backend

    yield install
    _BACKENDS.pop("faulty", None)


GOOD = ["ACGT", "AACCGGTT", "TTTTACGT", "CCCC", "GGTTAACC"]


def good_batch():
    return [(seq, seq) for seq in GOOD]


class TestPerPairBackendIsolation:
    """One raising pair costs exactly one outcome, never the chunk."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_raise_isolated_per_pair(self, faulty, workers):
        faulty(mode="raise")
        batch = good_batch()[:2] + [(POISON, POISON)] + good_batch()[2:]
        res = align_pairs(
            batch, backend="faulty", workers=workers, chunk_size=2,
            cache_size=0,
        )
        bad = res.outcomes[2]
        assert not bad.ok and not bad.success
        assert bad.error_kind == ERROR_BACKEND
        assert "injected fault" in bad.error_msg
        for idx, (a, b) in enumerate(batch):
            if idx == 2:
                continue
            o = res.outcomes[idx]
            assert o.ok and o.success and o.score == len(a) + len(b)
        assert res.report.errors == 1
        assert res.report.rejected == 0

    def test_strict_restores_raise(self, faulty):
        faulty(mode="raise")
        with pytest.raises(RuntimeError, match="injected fault"):
            align_pairs(
                good_batch() + [(POISON, POISON)],
                backend="faulty", strict=True, cache_size=0,
            )

    def test_errored_outcomes_not_cached(self, faulty):
        backend = faulty(mode="raise")
        config = EngineConfig(backend="faulty", cache_size=64)
        with BatchAlignmentEngine(config) as engine:
            first = engine.align_batch([(POISON, POISON)])
            assert not first.outcomes[0].ok
            # A fixed backend must get a fresh chance, not a cached error.
            backend.mode = "none"
            second = engine.align_batch([(POISON, POISON)])
        assert second.outcomes[0].ok
        assert second.report.cache_hits == 0


class TestValidationIsolation:
    """Boundary rejections are per-pair and never reach a backend."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_mixed_malformed_batch(self, workers):
        batch = [
            ("ACGT", "ACGT"),     # good
            ("acgt", "ACGT"),     # lowercase: normalized, bit-identical
            ("ACNT", "ACGT"),     # 'N': unsupported read (§4.2 policy)
            ("ACQT", "ACGT"),     # invalid charset: rejected as error
            ("AAAA", "TTTT"),     # good
        ]
        res = align_pairs(
            batch, backend="vectorized", workers=workers, chunk_size=1,
            cache_size=0,
        )
        assert [o.ok for o in res.outcomes] == [True, True, True, False, True]
        assert res.outcomes[1].score == res.outcomes[0].score == 0
        unsupported = res.outcomes[2]
        assert unsupported.ok and not unsupported.success
        assert unsupported.error_kind == ERROR_UNSUPPORTED_READ
        invalid = res.outcomes[3]
        assert invalid.error_kind == ERROR_INVALID_BASE
        assert "ACGTN" in invalid.error_msg
        assert res.report.rejected == 2
        assert res.report.errors == 1
        assert res.outcomes[4].score == 16

    def test_bytes_raise_typed_error_naming_slot(self):
        with pytest.raises(TypeError, match=r"pair 1: pattern must be str"):
            align_pairs([("ACGT", "ACGT"), (b"ACGT", "ACGT")])
        with pytest.raises(TypeError, match=r"pair 0: text must be str"):
            align_pairs([("ACGT", 7)])

    def test_rejected_pairs_excluded_from_gcups_cells(self):
        res = align_pairs([("ACGT", "ACGT"), ("ACGN", "ACGN")])
        assert res.report.swg_cells == 16  # only the served pair counts

    def test_engine_max_read_len_policy(self):
        res = align_pairs(
            [("ACGT" * 8, "ACGT" * 8), ("AC", "AC")], max_read_len=16
        )
        long_one = res.outcomes[0]
        assert long_one.ok and not long_one.success
        assert long_one.error_kind == ERROR_UNSUPPORTED_READ
        assert "MAX_READ_LEN" in long_one.error_msg
        assert res.outcomes[1].success


dna = st.text(alphabet="ACGT", min_size=0, max_size=24)
malformed = st.sampled_from(["ACQT", "AC!T", "NNNN", "ACGN", "xyz"])


class TestFaultIsolationInvariant:
    """Property: K malformed pairs never perturb the other N-K results."""

    @given(
        good=st.lists(st.tuples(dna, dna), min_size=1, max_size=6),
        bad=st.lists(malformed, min_size=1, max_size=3),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_good_pairs_bit_identical_to_solo_runs(self, good, bad, seed):
        batch = [(a, b) for a, b in good]
        for i, seq in enumerate(bad):
            batch.insert((seed + i) % (len(batch) + 1), (seq, "ACGT"))
        res = align_pairs(
            batch, backend="vectorized", backtrace=True, cache_size=0
        )
        assert len(res.outcomes) == len(batch)
        for (a, b), outcome in zip(batch, res.outcomes):
            if set(a) - set("ACGT"):
                assert not outcome.ok or not outcome.success
                continue
            solo = align_pairs(
                [(a, b)], backend="vectorized", backtrace=True, cache_size=0
            ).outcomes[0]
            assert (outcome.score, outcome.success, outcome.cigar) == (
                solo.score, solo.success, solo.cigar
            )
            assert outcome.ok


@pytest.mark.slow
class TestWorkerFaultTolerance:
    """The multiprocessing path survives worker death and hangs."""

    def test_worker_death_loses_no_good_pairs(self, faulty):
        # The poison pair kills its worker on every attempt; after the
        # bounded resubmission the chunk is quarantined pair-by-pair, so
        # the good pair sharing its chunk still comes back.
        faulty(mode="exit")
        batch = good_batch() + [(POISON, POISON)] + good_batch()
        res = align_pairs(
            batch, backend="faulty", workers=4, chunk_size=2, cache_size=0,
            chunk_timeout=3.0, max_chunk_retries=1,
        )
        for idx, (a, b) in enumerate(batch):
            o = res.outcomes[idx]
            if a == POISON:
                assert not o.ok
                assert o.error_kind == ERROR_WORKER_LOST
            else:
                assert o.ok and o.score == len(a) + len(b), (idx, o)
        assert res.report.errors == 1
        assert res.report.retries >= 1

    def test_transient_worker_death_recovers_by_resubmission(
        self, faulty, tmp_path
    ):
        faulty(mode="exit", crash_once_path=str(tmp_path / "crashed.marker"))
        batch = good_batch() + [(POISON, POISON)]
        res = align_pairs(
            batch, backend="faulty", workers=2, chunk_size=2, cache_size=0,
            chunk_timeout=3.0, max_chunk_retries=2,
        )
        assert all(o.ok for o in res.outcomes)
        assert res.outcomes[-1].score == 2 * len(POISON)
        assert res.report.retries >= 1
        assert res.report.errors == 0

    def test_hung_worker_times_out_per_pair(self, faulty):
        faulty(mode="hang")
        batch = good_batch() + [(POISON, POISON)]
        res = align_pairs(
            batch, backend="faulty", workers=2, chunk_size=2, cache_size=0,
            chunk_timeout=1.5, max_chunk_retries=0,
        )
        hung = res.outcomes[-1]
        assert not hung.ok
        assert hung.error_kind == ERROR_TIMEOUT
        for o, (a, b) in zip(res.outcomes, batch):
            if a != POISON:
                assert o.ok and o.score == len(a) + len(b)

    def test_unusable_pool_degrades_in_process(self, faulty, monkeypatch):
        faulty(mode="raise")
        monkeypatch.setattr(
            BatchAlignmentEngine,
            "_ensure_pool",
            lambda self: (_ for _ in ()).throw(OSError("no processes left")),
        )
        batch = good_batch() + [(POISON, POISON)]
        res = align_pairs(
            batch, backend="faulty", workers=4, chunk_size=2, cache_size=0
        )
        assert [o.ok for o in res.outcomes] == [True] * 5 + [False]
        assert res.outcomes[-1].error_kind == ERROR_BACKEND
