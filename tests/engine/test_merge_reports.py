"""Regression tests for ``merge_batch_reports`` (ISSUE 8 satellite 1).

The original merge summed ``elapsed_seconds`` across reports — correct
only for strictly serial back-to-back batches.  The serving layer's
batches are separated by idle time (and can interleave with queueing),
so the summed span fabricated pairs/s, GCUPS and worker utilisation.
The fix threads the caller-measured wall-clock span through
``wall_seconds``; the sum survives as the documented fallback.
"""

import pytest

from repro.engine import WorkerStats, merge_batch_reports
from repro.engine.engine import BatchReport


def report(elapsed, num_pairs=10, swg_cells=1_000_000, busy=None):
    return BatchReport(
        backend="vectorized",
        workers=2,
        num_pairs=num_pairs,
        pairs_aligned=num_pairs,
        cache_hits=0,
        coalesced=0,
        elapsed_seconds=elapsed,
        swg_cells=swg_cells,
        worker_stats=[WorkerStats(0, 1, num_pairs, busy)] if busy else [],
        profile={"execute": {"calls": 1, "seconds": elapsed}},
    )


class TestWallClockSpan:
    def test_overlapping_reports_use_the_session_span(self):
        # Two 1 s batches that ran concurrently inside a 1.2 s session:
        # the serial sum (2.0 s) would halve every derived rate.
        merged = merge_batch_reports(
            [report(1.0), report(1.0)], wall_seconds=1.2
        )
        assert merged.elapsed_seconds == 1.2
        assert merged.num_pairs == 20
        assert merged.pairs_per_second == pytest.approx(20 / 1.2)
        assert merged.gcups == pytest.approx(2_000_000 / 1.2 / 1e9)

    def test_idle_gaps_deflate_rates_honestly(self):
        # Two fast batches separated by idle time: the session served
        # 20 pairs over 10 s of wall clock, not over 0.2 s of busy time.
        merged = merge_batch_reports(
            [report(0.1), report(0.1)], wall_seconds=10.0
        )
        assert merged.pairs_per_second == pytest.approx(2.0)

    def test_worker_utilisation_follows_the_span(self):
        merged = merge_batch_reports(
            [report(1.0, busy=0.5), report(1.0, busy=0.5)],
            wall_seconds=4.0,
        )
        # 1.0 s of busy time over a 4 s session on 2 workers.
        assert merged.worker_utilisation == pytest.approx(1.0 / 8.0)

    def test_zero_span_allowed(self):
        assert merge_batch_reports(
            [report(1.0)], wall_seconds=0.0
        ).elapsed_seconds == 0.0

    def test_negative_span_rejected(self):
        with pytest.raises(ValueError, match="wall_seconds"):
            merge_batch_reports([report(1.0)], wall_seconds=-0.1)


class TestSerialFallback:
    def test_sum_remains_the_default(self):
        # Serial back-to-back merges with no clock of their own keep
        # the historical behaviour.
        merged = merge_batch_reports([report(1.0), report(2.5)])
        assert merged.elapsed_seconds == pytest.approx(3.5)

    def test_counters_and_profile_unaffected_by_span_choice(self):
        reports = [report(1.0), report(2.0)]
        with_span = merge_batch_reports(reports, wall_seconds=2.5)
        without = merge_batch_reports(reports)
        for field in (
            "num_pairs", "pairs_aligned", "cache_hits", "coalesced",
            "errors", "rejected", "retries", "swg_cells", "profile",
        ):
            assert getattr(with_span, field) == getattr(without, field)
        assert with_span.profile["execute"]["seconds"] == pytest.approx(3.0)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            merge_batch_reports([])
