"""Smoke tests: every shipped example must run clean end to end.

The examples double as integration tests of the public API — each one
asserts its own correctness conditions internally (oracle checks, mapper
accuracy, overlap recall), so simply running them is a meaningful test.
The long-running ones are marked slow.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "WFAsic score" in out
        assert "CIGAR" in out

    @pytest.mark.slow
    def test_soc_batch_alignment(self, capsys):
        run_example("soc_batch_alignment.py")
        out = capsys.readouterr().out
        assert "[OK ]" in out and "[BAD]" not in out
        assert "speedup" in out

    @pytest.mark.slow
    def test_read_mapping(self, capsys):
        run_example("read_mapping.py")
        assert "reads mapped to their true location" in capsys.readouterr().out

    @pytest.mark.slow
    def test_long_read_overlap(self, capsys):
        run_example("long_read_overlap.py")
        out = capsys.readouterr().out
        assert "spurious overlaps accepted: 0" in out

    @pytest.mark.slow
    def test_design_space_exploration(self, capsys):
        run_example("design_space_exploration.py")
        assert "Kpairs/s/mm2" in capsys.readouterr().out

    @pytest.mark.slow
    def test_throughput_analysis(self, capsys):
        run_example("throughput_analysis.py")
        out = capsys.readouterr().out
        assert "pipelining gain" in out
        assert "aligner 0" in out  # the Gantt render
