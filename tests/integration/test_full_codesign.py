"""Integration tests: the whole co-design stack, end to end (Fig. 4).

These tests exercise the full path — workload generation, byte-exact
memory image, MMIO-driven accelerator, result streams, CPU backtrace —
and cross-check every outcome against the SWG oracle.
"""

import random

import pytest

from repro.align import DEFAULT_PENALTIES, swg_align
from repro.soc import Soc
from repro.verify import EquivalenceChecker
from repro.wfasic import WfasicConfig
from repro.workloads import PairGenerator, SequencePair, make_input_set

from tests.util import assert_valid_cigar, random_pair


class TestCodesignFlow:
    @pytest.mark.slow
    def test_paper_configuration_bt_on(self):
        pairs = make_input_set("1K-5%", 3)
        soc = Soc(WfasicConfig.paper_default(backtrace=True))
        out = soc.run_accelerated(pairs)
        for p in pairs:
            ref = swg_align(p.pattern, p.text)
            assert out.scores[p.pair_id] == ref.score
            assert_valid_cigar(
                out.cigars[p.pair_id], p.pattern, p.text,
                DEFAULT_PENALTIES, ref.score,
            )

    def test_mixed_batch_with_broken_pairs(self):
        """Broken pairs are rejected pair-wise; healthy pairs still align."""
        rng = random.Random(123)
        pairs = []
        for i in range(6):
            a, b = random_pair(rng, 40, 0.2)
            if i == 2:
                a = a[:10] + "N" + a[10:]  # unsupported base
            pairs.append(SequencePair(pattern=a, text=b, pair_id=i))
        soc = Soc(WfasicConfig.paper_default(backtrace=True))
        out = soc.run_accelerated(pairs)
        assert not out.success[2]
        for p in pairs:
            if p.pair_id == 2:
                continue
            assert out.success[p.pair_id]
            assert out.scores[p.pair_id] == swg_align(p.pattern, p.text).score

    def test_score_limit_pair_flagged_not_fatal(self):
        """A pair beyond Eq. 6's score budget fails alone."""
        good = SequencePair(pattern="ACGT" * 10, text="ACGT" * 10, pair_id=0)
        bad = SequencePair(pattern="A" * 60, text="T" * 60, pair_id=1)
        soc = Soc(WfasicConfig(k_max=20, backtrace=True))
        out = soc.run_accelerated([good, bad])
        assert out.success[0] and not out.success[1]
        assert out.cigars[1] is None

    def test_multi_aligner_end_to_end(self):
        pairs = make_input_set("100-10%", 10)
        soc = Soc(WfasicConfig(num_aligners=3, parallel_sections=32, backtrace=True))
        out = soc.run_accelerated(pairs)
        for p in pairs:
            assert out.success[p.pair_id]
            assert_valid_cigar(out.cigars[p.pair_id], p.pattern, p.text)

    def test_driver_register_trace_is_complete(self):
        """The CPU interacts with the accelerator only through MMIO."""
        pairs = make_input_set("100-5%", 2)
        soc = Soc(WfasicConfig.paper_default(backtrace=False))
        soc.run_accelerated(pairs)
        # Config registers + start + polls all went over AXI-Lite.
        assert soc.driver.axi_lite.writes >= 7
        assert soc.driver.poll_count >= 1


class TestEquivalenceCampaign:
    """The §5.1 verification campaign as an integration test."""

    def test_default_config_campaign(self):
        report = EquivalenceChecker(seed=11).campaign(count=30, max_len=100)
        assert report.ok, report.mismatches

    def test_two_aligner_campaign(self):
        cfg = WfasicConfig(num_aligners=2, parallel_sections=32)
        report = EquivalenceChecker(cfg, seed=12).campaign(count=20, max_len=80)
        assert report.ok, report.mismatches


class TestScalePaths:
    @pytest.mark.slow
    def test_1kbp_full_fidelity(self):
        gen = PairGenerator(length=1000, error_rate=0.08, seed=5)
        pairs = gen.batch(2)
        soc = Soc(WfasicConfig.paper_default(backtrace=True))
        out = soc.run_accelerated(pairs)
        for p in pairs:
            ref = swg_align(p.pattern, p.text)
            assert out.scores[p.pair_id] == ref.score
            assert_valid_cigar(
                out.cigars[p.pair_id], p.pattern, p.text,
                DEFAULT_PENALTIES, ref.score,
            )

    @pytest.mark.slow
    def test_10kbp_full_fidelity(self):
        pairs = make_input_set("10K-10%", 1)
        soc = Soc(WfasicConfig.paper_default(backtrace=True))
        out = soc.run_accelerated(pairs)
        p = pairs[0]
        assert_valid_cigar(
            out.cigars[p.pair_id], p.pattern, p.text,
            DEFAULT_PENALTIES, out.scores[p.pair_id],
        )
        # Backtrace stream magnitude sanity (§4.1 mentions ~10 MB/pair at
        # 10 % error; our origin encoding is a few MB).
        assert out.backtrace_work.transactions_scanned > 50_000
