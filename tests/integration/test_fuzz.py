"""Property-based and fuzz tests across module boundaries.

Hypothesis drives the full stack the way §5.1's campaigns drive the
FPGA prototype: arbitrary (small) sequence pairs must round-trip the
whole co-design flow exactly, and arbitrary *garbage* — corrupted result
streams, random input images — must be rejected with typed errors, never
crashes or hangs.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.align import DEFAULT_PENALTIES, CigarError, swg_align
from repro.wfasic import (
    Aligner,
    BacktraceStreamError,
    CollectorBT,
    CpuBacktracer,
    WfasicAccelerator,
    WfasicConfig,
)
from repro.wfasic.packets import (
    encode_pair_record,
    pair_record_sections,
    round_up_read_len,
)
from repro.wfasic.extractor import Extractor

from tests.util import assert_valid_cigar

dna = st.text(alphabet="ACGT", min_size=0, max_size=40)


def _job(a: str, b: str, aid: int = 0):
    mrl = round_up_read_len(max(len(a), len(b), 1))
    rec = encode_pair_record(aid, a, b, mrl)
    return Extractor(mrl).extract(rec), mrl


@given(a=dna, b=dna)
@settings(max_examples=80, deadline=None)
def test_property_accelerator_matches_oracle(a, b):
    job, _ = _job(a, b)
    run = Aligner(WfasicConfig.paper_default(backtrace=False)).run(job)
    assert run.success
    assert run.score == swg_align(a, b).score


@given(a=dna, b=dna)
@settings(max_examples=50, deadline=None)
def test_property_hardware_backtrace_roundtrip(a, b):
    cfg = WfasicConfig.paper_default(backtrace=True)
    job, _ = _job(a, b)
    run = Aligner(cfg).run(job)
    stream = CollectorBT().collect([run]).as_stream()
    results, _ = CpuBacktracer(cfg).process(stream, {0: (a, b)}, separate=False)
    res = results[0]
    assert res.score == swg_align(a, b).score
    assert_valid_cigar(res.cigar, a, b, DEFAULT_PENALTIES, res.score)


@given(
    a=st.text(alphabet="ACGT", min_size=4, max_size=30),
    b=st.text(alphabet="ACGT", min_size=4, max_size=30),
    positions=st.lists(st.integers(min_value=0, max_value=10_000), max_size=6),
    flips=st.lists(st.integers(min_value=1, max_value=255), max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_fuzz_corrupted_stream_never_crashes(a, b, positions, flips):
    """Bit-flipped result streams are rejected or yield checkable output."""
    cfg = WfasicConfig.paper_default(backtrace=True)
    job, _ = _job(a, b)
    run = Aligner(cfg).run(job)
    stream = bytearray(CollectorBT().collect([run]).as_stream())
    for pos, flip in zip(positions, flips):
        stream[pos % len(stream)] ^= flip
    try:
        results, _ = CpuBacktracer(cfg).process(
            bytes(stream), {0: (a, b)}, separate=False
        )
    except (BacktraceStreamError, CigarError, ValueError):
        return  # typed rejection is the expected outcome
    for res in results:
        if res.cigar is not None:
            # Whatever survived must still be a structurally valid CIGAR
            # for *some* pair of the right lengths.
            assert res.cigar.pattern_length == len(a)
            assert res.cigar.text_length == len(b)


@given(data=st.binary(min_size=0, max_size=4096))
@settings(max_examples=60, deadline=None)
def test_fuzz_random_images_never_crash(data):
    """Arbitrary bytes as an input image: typed rejection or per-pair
    Success=0, never an unhandled crash."""
    mrl = 32
    record = pair_record_sections(mrl) * 16
    # Pad to whole records so the framing layer accepts it; the content
    # remains garbage.
    padded = bytes(data) + b"\x00" * (-len(data) % record)
    accel = WfasicAccelerator(WfasicConfig(max_read_len=mrl, backtrace=False))
    try:
        batch = accel.run_image(padded, mrl)
    except ValueError:
        return
    for run in batch.runs:
        assert isinstance(run.success, bool)


@given(
    a=dna,
    b=dna,
    n_ps=st.sampled_from([16, 32, 48, 64]),
)
@settings(max_examples=40, deadline=None)
def test_property_parallel_sections_never_change_results(a, b, n_ps):
    cfg = WfasicConfig(parallel_sections=n_ps, backtrace=False)
    job, _ = _job(a, b)
    run = Aligner(cfg).run(job)
    assert run.success
    assert run.score == swg_align(a, b).score
