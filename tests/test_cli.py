"""Tests for the repro-wfasic command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, format_cli_reference, main
from repro.workloads import read_seq_file

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestGenerate:
    def test_named_set(self, tmp_path, capsys):
        out = tmp_path / "set.seq"
        assert main(["generate", str(out), "--set", "100-5%", "-n", "3"]) == 0
        pairs = read_seq_file(out)
        assert len(pairs) == 3
        assert all(len(p.pattern) == 100 for p in pairs)
        assert "wrote 3 pairs" in capsys.readouterr().out

    def test_custom_parameters(self, tmp_path):
        out = tmp_path / "custom.seq"
        assert (
            main(
                [
                    "generate", str(out),
                    "--length", "64", "--error-rate", "0.2", "-n", "5",
                ]
            )
            == 0
        )
        pairs = read_seq_file(out)
        assert len(pairs) == 5
        assert all(len(p.pattern) == 64 for p in pairs)

    def test_set_and_length_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", str(tmp_path / "x.seq"), "--set", "100-5%",
                  "--length", "64"])

    def test_deterministic_with_seed(self, tmp_path):
        a, b = tmp_path / "a.seq", tmp_path / "b.seq"
        main(["generate", str(a), "--length", "50", "--seed", "9"])
        main(["generate", str(b), "--length", "50", "--seed", "9"])
        assert a.read_text() == b.read_text()


class TestAlign:
    @pytest.fixture()
    def seq_file(self, tmp_path):
        out = tmp_path / "in.seq"
        main(["generate", str(out), "--set", "100-10%", "-n", "3"])
        return str(out)

    def test_accelerated(self, seq_file, capsys):
        assert main(["align", seq_file]) == 0
        out = capsys.readouterr().out
        assert "3 pairs, 0 failures" in out
        assert "score=" in out

    def test_backtrace_prints_cigars(self, seq_file, capsys):
        assert main(["align", seq_file, "--backtrace"]) == 0
        assert "cigar=" in capsys.readouterr().out

    def test_cpu_engines(self, seq_file, capsys):
        assert main(["align", seq_file, "--engine", "cpu-scalar"]) == 0
        scalar = capsys.readouterr().out
        assert main(["align", seq_file, "--engine", "cpu-vector"]) == 0
        vector = capsys.readouterr().out
        assert "CPU cycles" in scalar and "CPU cycles" in vector

    def test_engines_agree_on_scores(self, seq_file, capsys):
        main(["align", seq_file, "--engine", "accel"])
        accel = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("pair")
        ]
        main(["align", seq_file, "--engine", "cpu-scalar"])
        cpu = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("pair")
        ]
        assert accel == cpu

    def test_quiet(self, seq_file, capsys):
        assert main(["align", seq_file, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "pair 0" not in out
        assert "3 pairs" in out

    def test_multi_aligner_config(self, seq_file, capsys):
        assert main(["align", seq_file, "--aligners", "2",
                     "--parallel-sections", "32"]) == 0
        assert "2x32PS" in capsys.readouterr().out

    def test_empty_input(self, tmp_path, capsys):
        empty = tmp_path / "empty.seq"
        empty.write_text("")
        assert main(["align", str(empty)]) == 1


class TestBatch:
    @pytest.fixture()
    def seq_file(self, tmp_path):
        out = tmp_path / "batch.seq"
        main(["generate", str(out), "--set", "100-10%", "-n", "6"])
        return str(out)

    def test_tsv_output(self, seq_file, capsys):
        assert main(["batch", seq_file, "--backend", "vectorized"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l and "=" not in l]
        assert lines[0] == "pair_id\tscore\tsuccess\tcigar"
        assert len(lines) == 7  # header + 6 pairs
        assert "pairs/s" in out and "cache_hit_rate" in out

    def test_json_output(self, seq_file, capsys):
        assert main(["batch", seq_file, "--format", "json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[: out.rindex("}") + 1])
        assert doc["summary"]["num_pairs"] == 6
        assert len(doc["results"]) == 6
        assert all(r["success"] for r in doc["results"])

    def test_backtrace_emits_cigars(self, seq_file, capsys):
        assert main(["batch", seq_file, "--backtrace"]) == 0
        rows = [
            l.split("\t") for l in capsys.readouterr().out.splitlines()
            if l and l[0].isdigit()
        ]
        assert rows and all(r[3] not in (".", "") for r in rows)

    def test_parallel_workers_match_serial(self, seq_file, capsys):
        main(["batch", seq_file, "-j", "1"])
        serial = [
            l for l in capsys.readouterr().out.splitlines()
            if l and l[0].isdigit()
        ]
        main(["batch", seq_file, "-j", "2", "--chunk-size", "2"])
        parallel = [
            l for l in capsys.readouterr().out.splitlines()
            if l and l[0].isdigit()
        ]
        assert serial == parallel

    def test_generated_workload_and_output_file(self, tmp_path, capsys):
        out = tmp_path / "results.tsv"
        assert main([
            "batch", "--generate", "64", "-n", "8", "--seed", "3",
            "--backend", "swg", "-o", str(out),
        ]) == 0
        assert "pairs/s" in capsys.readouterr().out
        assert len(out.read_text().splitlines()) == 9

    def test_custom_penalties(self, capsys):
        # An all-mismatch pair re-scored under x=1: score 4, not 16.
        assert main([
            "batch", "--generate", "4", "-n", "1", "--error-rate", "0",
            "--penalties", "1,0,1", "--backend", "swg",
        ]) == 0

    def test_requires_input_or_generate(self, capsys):
        assert main(["batch"]) == 2
        assert "needs an input" in capsys.readouterr().err

    def test_rejects_both_input_and_generate(self, tmp_path, capsys):
        f = tmp_path / "x.seq"
        f.write_text(">A\n<A\n")
        assert main(["batch", str(f), "--generate", "10"]) == 2

    def test_empty_input(self, tmp_path, capsys):
        empty = tmp_path / "empty.seq"
        empty.write_text("")
        assert main(["batch", str(empty)]) == 1

    def test_invalid_worker_count(self, seq_file, capsys):
        assert main(["batch", seq_file, "-j", "0"]) == 2
        assert "invalid engine configuration" in capsys.readouterr().err

    def test_bad_penalties_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(["batch", "--generate", "8", "--penalties", "nope"])


class TestReport:
    def test_asic(self, capsys):
        assert main(["report", "--what", "asic"]) == 0
        out = capsys.readouterr().out
        assert "memory macros" in out and "260" in out

    def test_fpga(self, capsys):
        assert main(["report", "--what", "fpga"]) == 0
        out = capsys.readouterr().out
        assert "fits U280" in out and "True" in out

    def test_custom_kmax(self, capsys):
        assert main(["report", "--what", "asic", "--k-max", "100"]) == 0
        assert "204" in capsys.readouterr().out  # Eq. 6: 100*2+4


class TestVerify:
    def test_clean_campaign(self, capsys):
        assert main(["verify", "-n", "6", "--max-len", "40"]) == 0
        assert "all engines agree" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCliReference:
    """The README's generated CLI section stays in sync with the parser."""

    def test_reference_covers_every_subcommand(self):
        text = format_cli_reference()
        for command in ("generate", "align", "batch", "serve", "submit",
                        "fleet", "metrics", "report", "stats", "verify"):
            assert f"#### `{command}`" in text, command

    def test_readme_section_matches_parser(self):
        readme = (REPO_ROOT / "README.md").read_text()
        import tools.sync_readme as sync

        begin, end = readme.index(sync.BEGIN), readme.index(sync.END)
        embedded = readme[begin + len(sync.BEGIN):end].strip()
        assert embedded == format_cli_reference().strip(), (
            "README CLI reference is stale; run "
            "`PYTHONPATH=src python tools/sync_readme.py`"
        )

    def test_render_readme_is_idempotent(self):
        import tools.sync_readme as sync

        readme = (REPO_ROOT / "README.md").read_text()
        assert sync.render_readme(readme) == readme


class TestFleetCli:
    """The `fleet` subcommand: plan inversion and the DSE sweep."""

    def test_plan_feasible_meets_target_within_budgets(self, tmp_path, capsys):
        """The ISSUE's acceptance criterion, end to end: the returned
        plan's *simulated* fleet meets the rate inside both budgets."""
        out = tmp_path / "plan.json"
        rc = main([
            "fleet", "plan", "--pairs-per-sec", "1000000",
            "--area", "100", "--power", "10",
            "-n", "16", "-o", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["kind"] == "fleet_plan" and doc["feasible"]
        assert doc["simulated_pairs_per_second"] >= 1_000_000
        assert doc["fleet"]["total_soc_area_mm2"] <= 100
        assert doc["fleet"]["total_power_w"] <= 10
        assert doc["chips"] >= 1 and doc["config"] is not None
        summary = capsys.readouterr().out
        assert "plan:" in summary and "simulated" in summary

    def test_plan_infeasible_exits_one(self, capsys):
        rc = main([
            "fleet", "plan", "--pairs-per-sec", "1e12",
            "--area", "4", "--power", "1", "-n", "8", "--max-chips", "2",
        ])
        assert rc == 1
        assert "INFEASIBLE" in capsys.readouterr().out

    def test_plan_requires_rate(self, capsys):
        assert main(["fleet", "plan"]) == 2
        assert "--pairs-per-sec" in capsys.readouterr().err

    def test_plan_writes_per_chip_trace(self, tmp_path, capsys):
        trace = tmp_path / "fleet.json"
        rc = main([
            "fleet", "plan", "--pairs-per-sec", "2000000",
            "-n", "16", "--trace", str(trace),
        ])
        assert rc == 0
        events = json.loads(trace.read_text())["traceEvents"]
        chip_lanes = {
            e["args"]["name"]
            for e in events
            if e.get("name") == "thread_name" and e.get("pid") == 2
            and e["args"]["name"].startswith("chip ")
        }
        assert any(lane.startswith("chip 0 ·") for lane in chip_lanes)

    def test_sweep_artifact_validates_and_prints_frontier(
        self, tmp_path, capsys
    ):
        from repro.fleet import validate_fleet_sweep

        out = tmp_path / "sweep.json"
        rc = main([
            "fleet", "sweep", "--sections", "16", "32", "--k-max", "512",
            "--chips", "1", "2", "-n", "8", "--batch-pairs", "2",
            "-o", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        validate_fleet_sweep(doc)
        assert len(doc["points"]) == 4
        assert "Pareto frontier" in capsys.readouterr().out

    def test_sweep_rejects_bad_grid(self, capsys):
        rc = main(["fleet", "sweep", "--sections", "0"])
        assert rc == 2
        assert "invalid sweep request" in capsys.readouterr().err


class TestStats:
    def test_summary_and_preflight(self, tmp_path, capsys):
        out = tmp_path / "s.seq"
        main(["generate", str(out), "--set", "100-10%", "-n", "4"])
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "4 pairs" in text
        assert "SUPPORTED" in text

    def test_at_risk_with_tiny_kmax(self, tmp_path, capsys):
        out = tmp_path / "s.seq"
        main(["generate", str(out), "--set", "100-10%", "-n", "3"])
        capsys.readouterr()
        assert main(["stats", str(out), "--k-max", "8"]) == 0
        assert "AT RISK" in capsys.readouterr().out

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "e.seq"
        empty.write_text("")
        assert main(["stats", str(empty)]) == 1


class TestBatchErrorChannel:
    """CLI surface of the engine's fault-isolation contract."""

    POISON = "GATTACAGATTACAGA"

    @pytest.fixture()
    def crashy_backend(self):
        from repro.engine import AlignmentBackend, register_backend
        from repro.engine.backends import _BACKENDS, PairOutcome

        poison = self.POISON

        class Crashy(AlignmentBackend):
            name = "crashy"

            def align_chunk(self, items, penalties, backtrace):
                out = []
                for slot, a, b in items:
                    if a == poison:
                        raise RuntimeError("injected CLI fault")
                    out.append(PairOutcome(slot, score=0))
                return out

        register_backend(Crashy(), replace=True)
        yield
        _BACKENDS.pop("crashy", None)

    @pytest.fixture()
    def mixed_file(self, tmp_path):
        out = tmp_path / "mixed.seq"
        out.write_text(
            f">ACGT\n<ACGT\n>{self.POISON}\n<{self.POISON}\n>AACC\n<AACC\n"
        )
        return str(out)

    def test_errored_pairs_exit_nonzero(self, crashy_backend, mixed_file,
                                        capsys):
        assert main(["batch", mixed_file, "--backend", "crashy",
                     "--format", "json", "-j", "1"]) == 1
        out = capsys.readouterr().out
        doc = json.loads(out[: out.rindex("}") + 1])
        assert doc["summary"]["errors"] == 1
        rows = doc["results"]
        assert [r["ok"] for r in rows] == [True, False, True]
        assert rows[1]["error_kind"] == "backend_error"
        assert "injected CLI fault" in rows[1]["error_msg"]
        assert rows[1]["success"] is False

    def test_strict_fails_whole_batch(self, tmp_path, capsys):
        bad = tmp_path / "n.seq"
        # 'N' pairs are unsupported reads (a hardware answer), never an
        # error: even --strict serves them with success=False, exit 0.
        bad.write_text(">ACGN\n<ACGT\n")
        assert main(["batch", str(bad), "--strict"]) == 0
        capsys.readouterr()

    def test_n_pairs_rejected_but_exit_zero(self, tmp_path, capsys):
        seq = tmp_path / "n.seq"
        seq.write_text(">ACGN\n<ACGT\n>ACGT\n<ACGT\n")
        assert main(["batch", str(seq), "--format", "json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[: out.rindex("}") + 1])
        assert doc["summary"]["rejected"] == 1
        assert doc["summary"]["errors"] == 0
        n_row = doc["results"][0]
        assert n_row["ok"] is True
        assert n_row["success"] is False
        assert n_row["error_kind"] == "unsupported_read"

    def test_timeout_and_retry_flags(self, tmp_path, capsys):
        seq = tmp_path / "t.seq"
        seq.write_text(">ACGT\n<ACGT\n")
        assert main(["batch", str(seq), "--timeout", "0",
                     "--retries", "0"]) == 0
        assert "errors=0 rejected=0 retries=0" in capsys.readouterr().out


class TestBatchBandingAndStreaming:
    @pytest.fixture()
    def seq_file(self, tmp_path):
        out = tmp_path / "band.seq"
        main(["generate", str(out), "--set", "100-10%", "-n", "6"])
        return str(out)

    @staticmethod
    def _rows(capsys):
        return [
            l.split("\t") for l in capsys.readouterr().out.splitlines()
            if l and l[0].isdigit()
        ]

    def test_wide_band_matches_exact_scores(self, seq_file, capsys):
        assert main(["batch", seq_file, "--backend", "batched"]) == 0
        exact = self._rows(capsys)
        assert main([
            "batch", seq_file, "--backend", "batched", "--band", "1000",
        ]) == 0
        assert self._rows(capsys) == exact

    def test_band_rejected_for_incapable_backend(self, seq_file, capsys):
        assert main([
            "batch", seq_file, "--backend", "vectorized", "--band", "8",
        ]) == 2
        assert "band" in capsys.readouterr().err

    def test_long_read_requires_generate(self, seq_file, capsys):
        assert main(["batch", seq_file, "--long-read"]) == 2
        assert "--generate" in capsys.readouterr().err

    def test_long_read_length_validated(self, capsys):
        assert main([
            "batch", "--generate", "100", "-n", "1", "--long-read",
        ]) == 2
        assert "invalid workload" in capsys.readouterr().err

    def test_long_read_banded_run(self, capsys):
        assert main([
            "batch", "--generate", "10000", "-n", "1", "--long-read",
            "--seed", "5", "--backend", "batched", "--band", "128",
            "--format", "json",
        ]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[: out.rindex("}") + 1])
        assert doc["summary"]["num_pairs"] == 1
        assert doc["results"][0]["success"]

    def test_stream_chunk_matches_single_batch(self, seq_file, capsys):
        assert main(["batch", seq_file, "--backend", "batched"]) == 0
        single = self._rows(capsys)
        assert main([
            "batch", seq_file, "--backend", "batched", "--stream-chunk", "2",
        ]) == 0
        assert self._rows(capsys) == single

    def test_stream_chunk_json_summary_merged(self, seq_file, capsys):
        assert main([
            "batch", seq_file, "--stream-chunk", "4", "--format", "json",
        ]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[: out.rindex("}") + 1])
        assert doc["summary"]["num_pairs"] == 6
        assert len(doc["results"]) == 6

    def test_stream_chunk_requires_file_input(self, capsys):
        assert main([
            "batch", "--generate", "64", "-n", "2", "--stream-chunk", "2",
        ]) == 2
        assert "file input" in capsys.readouterr().err

    def test_stream_chunk_rejects_metrics(self, seq_file, tmp_path, capsys):
        assert main([
            "batch", seq_file, "--stream-chunk", "2",
            "--metrics", str(tmp_path / "m.json"),
        ]) == 2
        assert "incompatible" in capsys.readouterr().err

    def test_stream_chunk_must_be_positive(self, seq_file, capsys):
        assert main(["batch", seq_file, "--stream-chunk", "0"]) == 2

    def test_fasta_input_autodetected(self, seq_file, tmp_path, capsys):
        assert main(["batch", seq_file]) == 0
        expected = self._rows(capsys)
        pairs = read_seq_file(seq_file)
        fasta = tmp_path / "band.fasta"
        fasta.write_text(
            "".join(
                f">p{p.pair_id}/pat\n{p.pattern}\n>p{p.pair_id}/txt\n{p.text}\n"
                for p in pairs
            ),
            encoding="ascii",
        )
        assert main(["batch", str(fasta)]) == 0
        assert self._rows(capsys) == expected
