"""Tests for the repro-wfasic command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.workloads import read_seq_file


class TestGenerate:
    def test_named_set(self, tmp_path, capsys):
        out = tmp_path / "set.seq"
        assert main(["generate", str(out), "--set", "100-5%", "-n", "3"]) == 0
        pairs = read_seq_file(out)
        assert len(pairs) == 3
        assert all(len(p.pattern) == 100 for p in pairs)
        assert "wrote 3 pairs" in capsys.readouterr().out

    def test_custom_parameters(self, tmp_path):
        out = tmp_path / "custom.seq"
        assert (
            main(
                [
                    "generate", str(out),
                    "--length", "64", "--error-rate", "0.2", "-n", "5",
                ]
            )
            == 0
        )
        pairs = read_seq_file(out)
        assert len(pairs) == 5
        assert all(len(p.pattern) == 64 for p in pairs)

    def test_set_and_length_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", str(tmp_path / "x.seq"), "--set", "100-5%",
                  "--length", "64"])

    def test_deterministic_with_seed(self, tmp_path):
        a, b = tmp_path / "a.seq", tmp_path / "b.seq"
        main(["generate", str(a), "--length", "50", "--seed", "9"])
        main(["generate", str(b), "--length", "50", "--seed", "9"])
        assert a.read_text() == b.read_text()


class TestAlign:
    @pytest.fixture()
    def seq_file(self, tmp_path):
        out = tmp_path / "in.seq"
        main(["generate", str(out), "--set", "100-10%", "-n", "3"])
        return str(out)

    def test_accelerated(self, seq_file, capsys):
        assert main(["align", seq_file]) == 0
        out = capsys.readouterr().out
        assert "3 pairs, 0 failures" in out
        assert "score=" in out

    def test_backtrace_prints_cigars(self, seq_file, capsys):
        assert main(["align", seq_file, "--backtrace"]) == 0
        assert "cigar=" in capsys.readouterr().out

    def test_cpu_engines(self, seq_file, capsys):
        assert main(["align", seq_file, "--engine", "cpu-scalar"]) == 0
        scalar = capsys.readouterr().out
        assert main(["align", seq_file, "--engine", "cpu-vector"]) == 0
        vector = capsys.readouterr().out
        assert "CPU cycles" in scalar and "CPU cycles" in vector

    def test_engines_agree_on_scores(self, seq_file, capsys):
        main(["align", seq_file, "--engine", "accel"])
        accel = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("pair")
        ]
        main(["align", seq_file, "--engine", "cpu-scalar"])
        cpu = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("pair")
        ]
        assert accel == cpu

    def test_quiet(self, seq_file, capsys):
        assert main(["align", seq_file, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "pair 0" not in out
        assert "3 pairs" in out

    def test_multi_aligner_config(self, seq_file, capsys):
        assert main(["align", seq_file, "--aligners", "2",
                     "--parallel-sections", "32"]) == 0
        assert "2x32PS" in capsys.readouterr().out

    def test_empty_input(self, tmp_path, capsys):
        empty = tmp_path / "empty.seq"
        empty.write_text("")
        assert main(["align", str(empty)]) == 1


class TestReport:
    def test_asic(self, capsys):
        assert main(["report", "--what", "asic"]) == 0
        out = capsys.readouterr().out
        assert "memory macros" in out and "260" in out

    def test_fpga(self, capsys):
        assert main(["report", "--what", "fpga"]) == 0
        out = capsys.readouterr().out
        assert "fits U280" in out and "True" in out

    def test_custom_kmax(self, capsys):
        assert main(["report", "--what", "asic", "--k-max", "100"]) == 0
        assert "204" in capsys.readouterr().out  # Eq. 6: 100*2+4


class TestVerify:
    def test_clean_campaign(self, capsys):
        assert main(["verify", "-n", "6", "--max-len", "40"]) == 0
        assert "all engines agree" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestStats:
    def test_summary_and_preflight(self, tmp_path, capsys):
        out = tmp_path / "s.seq"
        main(["generate", str(out), "--set", "100-10%", "-n", "4"])
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "4 pairs" in text
        assert "SUPPORTED" in text

    def test_at_risk_with_tiny_kmax(self, tmp_path, capsys):
        out = tmp_path / "s.seq"
        main(["generate", str(out), "--set", "100-10%", "-n", "3"])
        capsys.readouterr()
        assert main(["stats", str(out), "--k-max", "8"]) == 0
        assert "AT RISK" in capsys.readouterr().out

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "e.seq"
        empty.write_text("")
        assert main(["stats", str(empty)]) == 1
