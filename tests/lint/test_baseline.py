"""Baseline round-trips: grandfather, stay clean, go stale."""

import json

import pytest

from tools.wfalint import Baseline

#: A fixture file with one deliberate W001 violation.
VIOLATION = """\
import random

def shuffle(pairs):
    random.shuffle(pairs)
"""

FIXTURE = {"src/repro/workloads/gen.py": VIOLATION}


class TestBaselineFile:
    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert len(baseline) == 0

    def test_write_load_round_trip(self, lint_tree, tmp_path):
        result = lint_tree(FIXTURE)
        assert result.exit_code == 1
        path = tmp_path / "baseline.json"
        Baseline.from_findings(result.reported).write(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 1
        assert all(f in loaded for f in result.reported)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_entry_without_fingerprint_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"version": 1, "findings": [{"rule": "W001"}]})
        )
        with pytest.raises(ValueError, match="fingerprint"):
            Baseline.load(path)


class TestBaselineSemantics:
    def test_grandfathered_finding_does_not_fail(self, lint_tree):
        first = lint_tree(FIXTURE)
        baseline = Baseline.from_findings(first.reported)
        second = lint_tree(FIXTURE, baseline=baseline)
        assert second.exit_code == 0
        assert second.reported == []
        assert [f.rule_id for f in second.baselined] == ["W001"]
        assert second.stale_baseline == []

    def test_baseline_survives_line_drift(self, lint_tree):
        first = lint_tree(FIXTURE)
        baseline = Baseline.from_findings(first.reported)
        drifted = {
            "src/repro/workloads/gen.py": "# a new header comment\n"
            "# pushing the violation down\n" + VIOLATION
        }
        second = lint_tree(drifted, baseline=baseline)
        assert second.reported == []
        assert len(second.baselined) == 1

    def test_new_finding_still_fails(self, lint_tree):
        first = lint_tree(FIXTURE)
        baseline = Baseline.from_findings(first.reported)
        grown = {
            "src/repro/workloads/gen.py": VIOLATION
            + "\ndef roll():\n    return random.random()\n"
        }
        second = lint_tree(grown, baseline=baseline)
        assert second.exit_code == 1
        assert len(second.reported) == 1  # only the new draw
        assert len(second.baselined) == 1

    def test_fixed_finding_goes_stale(self, lint_tree):
        first = lint_tree(FIXTURE)
        baseline = Baseline.from_findings(first.reported)
        fixed = {
            "src/repro/workloads/gen.py": """\
            import random

            def shuffle(pairs, seed):
                random.Random(seed).shuffle(pairs)
            """
        }
        second = lint_tree(fixed, baseline=baseline)
        assert second.reported == []
        assert len(second.stale_baseline) == 1
        assert second.stale_baseline[0]["rule"] == "W001"

    def test_shipped_baseline_policy_is_empty(self):
        # The repository policy (docs/static-analysis.md): intentional
        # violations carry inline justifications; the committed
        # baseline stays empty.
        from tests.lint.conftest import REPO_ROOT

        shipped = Baseline.load(
            REPO_ROOT / "tools" / "wfalint" / "baseline.json"
        )
        assert len(shipped) == 0
