"""The committed source tree itself passes the committed gate.

This is the test-suite twin of the CI ``static-analysis`` job: if a
change introduces a wfalint finding (or an unjustified suppression
drift), it fails here first, locally, with the same message CI would
print.
"""

from tools.wfalint import Baseline, DEFAULT_BASELINE_PATH, run_lint

from .conftest import REPO_ROOT


#: The lint scope CI enforces: the package plus the executable trees
#: that import it, plus the repository tooling itself (the linter
#: honours its own contracts).  ``--update-baseline`` grandfathers
#: pre-existing findings when a tree first joins this list;
#: benchmarks/, examples/ and tools/ all joined clean, so the shipped
#: baseline stays empty.
LINT_PATHS = ("src", "benchmarks", "examples", "tools")


def _live_result():
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_PATH)
    return run_lint(
        [REPO_ROOT / p for p in LINT_PATHS], root=REPO_ROOT, baseline=baseline
    )


class TestLiveTree:
    def test_src_tree_is_clean(self):
        result = _live_result()
        formatted = "\n".join(f.format() for f in result.reported)
        assert result.reported == [], f"wfalint findings:\n{formatted}"
        assert result.parse_errors == []
        assert result.exit_code == 0

    def test_no_stale_baseline_entries(self):
        assert _live_result().stale_baseline == []

    def test_every_file_was_seen(self):
        # A wrong skip-list or glob that silently unscoped the pass
        # would show up as a collapsing file count.
        assert _live_result().files_checked > 50

    def test_analysis_runtime_within_ci_budget(self):
        # The whole-program pass (index build + W009–W013) is budgeted
        # at <10 s on the full tree; CI reads the same number from the
        # JSON artifact's `summary.analysis_seconds`.
        result = _live_result()
        assert 0.0 < result.analysis_seconds < 10.0

    def test_suppressions_are_justified(self):
        # Policy: every inline suppression carries prose after the rule
        # list (see docs/static-analysis.md).  An em-dash-free bare
        # directive is a review smell the suite rejects outright.
        result = _live_result()
        for finding in result.suppressed:
            src = (REPO_ROOT / finding.path).read_text().splitlines()
            window = "\n".join(
                src[max(0, finding.line - 2): finding.line]
            )
            assert "—" in window.split("disable=")[-1], (
                f"unjustified suppression near {finding.path}:{finding.line}"
            )
