"""Whole-program rule fixtures (W009–W014).

Each rule gets a positive (fires), a negative (blessed pattern passes),
and a suppressed fixture.  Trees are shaped like the real package so
async-root anchoring, scheduler detection and the arena exclusion are
all exercised.  Tests select the rule under test so fixture noise from
sibling rules cannot leak in.
"""


def _rules(result):
    return sorted(f.rule_id for f in result.reported)


#: A scheduler module every serve fixture shares: its async methods are
#: both the W009 reachability surface and the W011 re-entry surface.
SCHEDULER = """\
class MicroBatcher:
    async def submit(self, request):
        return request

    async def drain(self):
        return None
"""

#: The shm-owning class for W010 fixtures.  Lives at the real arena
#: path, which the rule excludes from its own findings.
ARENA = """\
class SequenceArena:
    def close(self):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
"""


class TestW009BlockingCallInAsync:
    def test_blocking_call_in_transitive_helper_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/serve/server.py": """\
                from repro.engine.engine import warm_up

                async def handle(request):
                    return warm_up(request)
                """,
                "src/repro/engine/engine.py": """\
                import time

                def warm_up(request):
                    time.sleep(0.1)
                    return request
                """,
            },
            select={"W009"},
        )
        assert _rules(result) == ["W009"]
        finding = result.reported[0]
        assert finding.path == "src/repro/engine/engine.py"
        assert "time.sleep" in finding.message
        assert "reachable from the event loop" in finding.message

    def test_path_write_text_in_async_def_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/cli.py": """\
                from pathlib import Path

                async def serve_session(args):
                    Path(args.ready_file).write_text("ready")
                """
            },
            select={"W009"},
        )
        assert _rules(result) == ["W009"]
        assert "write_text" in result.reported[0].message

    def test_run_in_executor_dispatch_passes(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/serve/server.py": """\
                import asyncio

                from repro.engine.engine import align_batch

                async def handle(pairs):
                    loop = asyncio.get_running_loop()
                    return await loop.run_in_executor(
                        None, align_batch, pairs
                    )
                """,
                "src/repro/engine/engine.py": """\
                import time

                def align_batch(pairs):
                    time.sleep(0.1)
                    return pairs
                """,
            },
            select={"W009"},
        )
        assert result.reported == []

    def test_blocking_outside_serve_reachability_passes(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/engine.py": """\
                import time

                def align_batch(pairs):
                    time.sleep(0.1)
                    return pairs
                """
            },
            select={"W009"},
        )
        assert result.reported == []

    def test_suppressed_with_justification(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/serve/server.py": """\
                async def handle(path):
                    # wfalint: disable=W009 — startup-only read, loop idle
                    return open(path)
                """
            },
            select={"W009"},
        )
        assert result.reported == []
        assert _rules_suppressed(result) == ["W009"]


def _rules_suppressed(result):
    return sorted(f.rule_id for f in result.suppressed)


class TestW010ResourceLifecycle:
    def test_bare_creation_statement_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/align/arena.py": ARENA,
                "src/repro/engine/engine.py": """\
                from repro.align.arena import SequenceArena

                def prepare():
                    arena = SequenceArena()
                    return None
                """,
            },
            select={"W010"},
        )
        assert _rules(result) == ["W010"]
        assert "SequenceArena" in result.reported[0].message

    def test_self_attr_without_teardown_surface_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/align/arena.py": ARENA,
                "src/repro/engine/engine.py": """\
                from repro.align.arena import SequenceArena

                class PackCache:
                    def __init__(self):
                        self.arena = SequenceArena()
                """,
            },
            select={"W010"},
        )
        assert _rules(result) == ["W010"]

    def test_with_close_transfer_and_owned_attr_pass(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/align/arena.py": ARENA,
                "src/repro/engine/engine.py": """\
                from repro.align.arena import SequenceArena

                def scoped():
                    with SequenceArena() as arena:
                        return arena

                def closed():
                    arena = SequenceArena()
                    try:
                        return arena
                    finally:
                        arena.close()

                def transferred(cache_cls):
                    return cache_cls(arena=SequenceArena())

                class PackCache:
                    def __init__(self):
                        self.arena = SequenceArena()

                    def close(self):
                        self.arena.close()
                """,
            },
            select={"W010"},
        )
        assert result.reported == []

    def test_factory_caller_that_discards_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/align/arena.py": ARENA,
                "src/repro/engine/engine.py": """\
                from repro.align.arena import SequenceArena

                def build_arena():
                    return SequenceArena()

                def leaky_caller():
                    arena = build_arena()
                    return None

                def careful_caller():
                    arena = build_arena()
                    try:
                        return len([arena])
                    finally:
                        arena.close()
                """,
            },
            select={"W010"},
        )
        assert _rules(result) == ["W010"]
        assert result.reported[0].line == 7  # the discarding call site
        assert "never closes" in result.reported[0].message

    def test_suppressed_with_justification(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/align/arena.py": ARENA,
                "src/repro/engine/engine.py": """\
                from repro.align.arena import SequenceArena

                def intentional():
                    # wfalint: disable=W010 — process-lifetime arena
                    arena = SequenceArena()
                    return None
                """,
            },
            select={"W010"},
        )
        assert result.reported == []
        assert _rules_suppressed(result) == ["W010"]


class TestW011AwaitUnderLock:
    def test_scheduler_reentry_under_lock_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/serve/scheduler.py": SCHEDULER,
                "src/repro/serve/server.py": """\
                import asyncio

                from .scheduler import MicroBatcher

                class AlignmentServer:
                    def __init__(self):
                        self.batcher = MicroBatcher()
                        self._lock = asyncio.Lock()

                    async def handle(self, request):
                        async with self._lock:
                            return await self.batcher.submit(request)
                """,
            },
            select={"W011"},
        )
        assert _rules(result) == ["W011"]
        assert "self._lock" in result.reported[0].message
        assert "re-enters the scheduler" in result.reported[0].message

    def test_closure_acquiring_outer_lock_flagged(self, lint_tree):
        # The serve idiom: the lock is bound in the connection handler
        # and acquired inside a closure — lock recognition is file-wide.
        result = lint_tree(
            {
                "src/repro/serve/scheduler.py": SCHEDULER,
                "src/repro/serve/server.py": """\
                import asyncio

                from .scheduler import MicroBatcher

                async def handle(batcher, request):
                    write_lock = asyncio.Lock()

                    async def relay(batcher: MicroBatcher, item):
                        async with write_lock:
                            return await batcher.submit(item)

                    return await relay(batcher, request)
                """,
            },
            select={"W011"},
        )
        assert _rules(result) == ["W011"]
        assert "write_lock" in result.reported[0].message

    def test_awaits_outside_lock_and_unresolved_drain_pass(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/serve/scheduler.py": SCHEDULER,
                "src/repro/serve/server.py": """\
                import asyncio

                from .scheduler import MicroBatcher

                async def handle(batcher: MicroBatcher, writer, request):
                    response = await batcher.submit(request)
                    write_lock = asyncio.Lock()
                    async with write_lock:
                        writer.write(response)
                        await writer.drain()
                    return response
                """,
            },
            select={"W011"},
        )
        assert result.reported == []

    def test_suppressed_with_justification(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/serve/scheduler.py": SCHEDULER,
                "src/repro/serve/server.py": """\
                import asyncio

                from .scheduler import MicroBatcher

                async def handle(batcher: MicroBatcher, request):
                    lock = asyncio.Lock()
                    async with lock:
                        # wfalint: disable=W011 — single-waiter lock
                        return await batcher.submit(request)
                """,
            },
            select={"W011"},
        )
        assert result.reported == []
        assert _rules_suppressed(result) == ["W011"]


#: Minimal docs + vocabulary + tracer trio for W012 fixtures.
OBS_DOCS = """\
# Observability

| Metric | Meaning |
| --- | --- |
| `engine_pairs_total` | Pairs aligned. |
| `engine_stage_seconds_total` | Stage time. |

| Event name | Meaning |
| --- | --- |
| `batch` | One batch. |
| `chunk (N pairs)` | One chunk. |
| `process_name` | Metadata. |
"""

TRACE = """\
class Tracer:
    def complete(self, name, track, start_us, end_us):
        pass

    def now_us(self):
        return 0.0

    def name_thread(self, name):
        pass


def get_tracer() -> "Tracer | None":
    return None
"""


class TestW012ArtifactConsistency:
    def test_undocumented_metric_and_span_flagged(self, lint_tree):
        result = lint_tree(
            {
                "docs/observability.md": OBS_DOCS,
                "src/repro/obs/vocabulary.py": """\
                METRIC_NAMES = frozenset({
                    "engine_pairs_total",
                    "engine_stage_seconds_total",
                    "engine_orphan_total",
                })
                LABEL_KEYS = frozenset({"backend", "stage"})
                """,
                "src/repro/obs/trace.py": TRACE,
                "src/repro/engine/engine.py": """\
                from repro.obs.trace import get_tracer

                def run(n):
                    tracer = get_tracer()
                    tracer.name_thread("engine")
                    start = tracer.now_us()
                    tracer.complete("batch", "engine", start, start)
                    tracer.complete(f"chunk ({n} pairs)", "engine", start, start)
                    tracer.complete("undocumented span", "engine", start, start)
                """,
            },
            select={"W012"},
        )
        assert _rules(result) == ["W012", "W012"]
        by_path = {f.path: f for f in result.reported}
        vocab = by_path["src/repro/obs/vocabulary.py"]
        assert "engine_orphan_total" in vocab.message
        span = by_path["src/repro/engine/engine.py"]
        assert "undocumented span" in span.message

    def test_documented_event_never_emitted_flagged(self, lint_tree):
        result = lint_tree(
            {
                "docs/observability.md": OBS_DOCS,
                "src/repro/obs/vocabulary.py": """\
                METRIC_NAMES = frozenset({
                    "engine_pairs_total",
                    "engine_stage_seconds_total",
                })
                LABEL_KEYS = frozenset({"backend", "stage"})
                """,
                "src/repro/obs/trace.py": TRACE,
                "src/repro/engine/engine.py": """\
                from repro.obs.trace import get_tracer

                def run(n):
                    tracer = get_tracer()
                    tracer.name_thread("engine")
                    start = tracer.now_us()
                    tracer.complete(f"chunk ({n} pairs)", "engine", start, start)
                """,
            },
            select={"W012"},
        )
        # `batch` is catalogued but never emitted; the f-string matches
        # `chunk (N pairs)` and name_thread covers `process_name`.
        assert _rules(result) == ["W012"]
        finding = result.reported[0]
        assert finding.path == "docs/observability.md"
        assert "`batch`" in finding.message

    def test_dangling_span_clock_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/obs/trace.py": TRACE,
                "src/repro/engine/engine.py": """\
                from repro.obs.trace import get_tracer

                def run():
                    tracer = get_tracer()
                    start = tracer.now_us()
                    return None
                """,
            },
            select={"W012"},
        )
        assert _rules(result) == ["W012"]
        assert "never completed" in result.reported[0].message

    def test_helper_param_names_and_clock_delegation_pass(self, lint_tree):
        result = lint_tree(
            {
                "docs/observability.md": OBS_DOCS,
                "src/repro/obs/vocabulary.py": """\
                METRIC_NAMES = frozenset({
                    "engine_pairs_total",
                    "engine_stage_seconds_total",
                })
                LABEL_KEYS = frozenset({"backend", "stage"})
                """,
                "src/repro/obs/trace.py": TRACE,
                "src/repro/engine/engine.py": """\
                from repro.obs.trace import get_tracer


                def _timed(tracer, name):
                    start = tracer.now_us()
                    tracer.complete(name, "engine", start, start)


                def publish(tracer, base_us):
                    pass


                def run(n):
                    tracer = get_tracer()
                    tracer.name_thread("engine")
                    _timed(tracer, "batch")
                    start = tracer.now_us()
                    tracer.complete(f"chunk ({n} pairs)", "x", start, start)
                    base_us = tracer.now_us()
                    publish(tracer, base_us)
                """,
            },
            select={"W012"},
        )
        assert result.reported == []

    def test_suppressed_with_justification(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/obs/trace.py": TRACE,
                "src/repro/engine/engine.py": """\
                from repro.obs.trace import get_tracer

                def run():
                    tracer = get_tracer()
                    # wfalint: disable=W012 — clock handed off via global
                    start = tracer.now_us()
                    return None
                """,
            },
            select={"W012"},
        )
        assert result.reported == []
        assert _rules_suppressed(result) == ["W012"]

    def test_tree_without_docs_skips_catalogue_checks(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/obs/trace.py": TRACE,
                "src/repro/engine/engine.py": """\
                from repro.obs.trace import get_tracer

                def run():
                    tracer = get_tracer()
                    start = tracer.now_us()
                    tracer.complete("anything goes", "engine", start, start)
                """,
            },
            select={"W012"},
        )
        assert result.reported == []


class TestW013TimeoutPropagation:
    def test_dropped_timeout_to_function_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/engine.py": """\
                from repro.engine.quarantine import run_quarantined

                def align(pairs, chunk_timeout):
                    return run_quarantined(pairs)
                """,
                "src/repro/engine/quarantine.py": """\
                def run_quarantined(payload, chunk_timeout=30.0):
                    return payload
                """,
            },
            select={"W013"},
        )
        assert _rules(result) == ["W013"]
        assert "chunk_timeout" in result.reported[0].message

    def test_dropped_timeout_to_config_dataclass_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/config.py": """\
                from dataclasses import dataclass

                @dataclass
                class EngineConfig:
                    chunk_timeout: float = 30.0
                    workers: int = 1
                """,
                "src/repro/engine/engine.py": """\
                from repro.engine.config import EngineConfig

                def align(pairs, chunk_timeout):
                    config = EngineConfig(workers=2)
                    return config
                """,
            },
            select={"W013"},
        )
        assert _rules(result) == ["W013"]
        assert "EngineConfig" in result.reported[0].message

    def test_forwarded_timeouts_pass(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/config.py": """\
                from dataclasses import dataclass

                @dataclass
                class EngineConfig:
                    chunk_timeout: float = 30.0
                """,
                "src/repro/engine/quarantine.py": """\
                def run_quarantined(payload, timeout=30.0):
                    return payload
                """,
                "src/repro/engine/engine.py": """\
                from repro.engine.config import EngineConfig
                from repro.engine.quarantine import run_quarantined

                def align(pairs, chunk_timeout, timeout):
                    config = EngineConfig(chunk_timeout=chunk_timeout)
                    run_quarantined(pairs, timeout)
                    return run_quarantined(pairs, timeout=timeout)
                """,
            },
            select={"W013"},
        )
        assert result.reported == []

    def test_kwargs_callee_and_opaque_forwarding_pass(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/quarantine.py": """\
                def run_quarantined(payload, timeout=30.0, **extra):
                    return payload

                def run_strict(payload, timeout=30.0):
                    return payload
                """,
                "src/repro/engine/engine.py": """\
                def align(pairs, timeout, **kwargs):
                    from repro.engine.quarantine import run_quarantined
                    return run_quarantined(pairs)

                def align_forwarding(pairs, timeout, kwargs):
                    from repro.engine.quarantine import run_strict
                    return run_strict(pairs, **kwargs)
                """,
            },
            select={"W013"},
        )
        assert result.reported == []

    def test_suppressed_with_justification(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/quarantine.py": """\
                def run_quarantined(payload, timeout=30.0):
                    return payload
                """,
                "src/repro/engine/engine.py": """\
                def align(pairs, timeout):
                    from repro.engine.quarantine import run_quarantined
                    # wfalint: disable=W013 — warm-up probe, no deadline
                    return run_quarantined(pairs)
                """,
            },
            select={"W013"},
        )
        assert result.reported == []
        assert _rules_suppressed(result) == ["W013"]


class TestW014DroppedTaskReference:
    def test_bare_statement_and_lambda_body_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/cli.py": """\
                import asyncio

                def install(loop, sig, server):
                    loop.add_signal_handler(
                        sig, lambda: loop.create_task(server.shutdown())
                    )

                async def spawn(loop, coro):
                    loop.create_task(coro)
                """
            },
            select={"W014"},
        )
        assert _rules(result) == ["W014", "W014"]

    def test_retained_reference_with_done_callback_passes(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/serve/server.py": """\
                async def handle(loop, coro):
                    tasks = set()
                    task = loop.create_task(coro)
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                """
            },
            select={"W014"},
        )
        assert result.reported == []

    def test_suppressed_with_justification(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/cli.py": """\
                async def spawn(loop, coro):
                    # wfalint: disable=W014 — loop outlives the task here
                    loop.create_task(coro)
                """
            },
            select={"W014"},
        )
        assert result.reported == []
        assert _rules_suppressed(result) == ["W014"]
