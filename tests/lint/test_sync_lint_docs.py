"""The docs' rule table is generated — and generated *currently*."""

import sys

from tools.wfalint.core import iter_rules

from .conftest import REPO_ROOT

DOC = REPO_ROOT / "docs" / "static-analysis.md"


def _sync_module():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import sync_lint_docs
    finally:
        sys.path.pop(0)
    return sync_lint_docs


class TestRuleTableSync:
    def test_table_is_current(self):
        """docs/static-analysis.md == its own regeneration."""
        sync = _sync_module()
        text = DOC.read_text()
        assert sync.render_doc(text) == text

    def test_every_registered_rule_has_a_row(self):
        table = _sync_module().render_rule_table()
        text = DOC.read_text()
        assert table in text
        for rule in iter_rules():
            assert f"| {rule.id} | `{rule.name}` |" in table

    def test_stale_table_is_detected_and_fixed(self, tmp_path, monkeypatch):
        sync = _sync_module()
        stale = tmp_path / "static-analysis.md"
        stale.write_text(
            "intro\n\n"
            f"{sync._BEGIN}\nstale table\n{sync._END}\n\n"
            "outro\n"
        )
        monkeypatch.setattr(sync, "DOC", stale)
        assert sync.main(["--check"]) == 1  # stale: nonzero, after fixing
        assert sync.render_rule_table() in stale.read_text()
        assert sync.main(["--check"]) == 0  # now current

    def test_missing_markers_is_an_error(self):
        sync = _sync_module()
        try:
            sync.render_doc("no markers here")
        except SystemExit as exc:
            assert "markers" in str(exc)
        else:
            raise AssertionError("expected SystemExit")
