"""Per-rule fixtures: one positive, one negative, one suppressed each.

Fixture trees are laid out like the real package
(``src/repro/<subpackage>/...``) so the rules' path-fragment scoping is
exercised too, not just their AST matching.
"""


def _rules(result):
    return sorted(f.rule_id for f in result.reported)


class TestW001UnseededRandom:
    def test_global_random_draw_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/workloads/gen.py": """\
                import random

                def shuffle_pairs(pairs):
                    random.shuffle(pairs)
                """
            }
        )
        assert _rules(result) == ["W001"]
        assert "global `random` state" in result.reported[0].message

    def test_unseeded_constructors_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/workloads/gen.py": """\
                import random
                import numpy as np

                rng = random.Random()
                nrng = np.random.default_rng()
                """
            }
        )
        assert _rules(result) == ["W001", "W001"]

    def test_from_import_draw_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/workloads/gen.py": """\
                from random import randint

                def roll():
                    return randint(1, 6)
                """
            }
        )
        assert _rules(result) == ["W001"]

    def test_seeded_generators_pass(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/workloads/gen.py": """\
                import random
                import numpy as np
                from numpy.random import default_rng

                rng = random.Random(42)
                nrng = np.random.default_rng(seed=7)
                other = default_rng(0)
                """
            }
        )
        assert result.reported == []

    def test_out_of_scope_tree_ignored(self, lint_tree):
        result = lint_tree(
            {
                "scripts/gen.py": """\
                import random
                random.seed(0)
                """
            }
        )
        assert result.reported == []

    def test_suppressed_inline(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/workloads/gen.py": """\
                import random

                random.shuffle([])  # wfalint: disable=W001 — test shim
                """
            }
        )
        assert result.reported == []
        assert _rules_of(result.suppressed) == ["W001"]


class TestW002FloatCycleArithmetic:
    def test_true_division_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/wfasic/timing.py": """\
                def per_pair(total_cycles, n):
                    return total_cycles / n
                """
            }
        )
        assert _rules(result) == ["W002"]

    def test_float_cast_and_literal_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/soc/timing.py": """\
                class Model:
                    def reset(self):
                        self.cycles = 0.0
                        return float(self.cycles)
                """
            }
        )
        assert _rules(result) == ["W002", "W002"]

    def test_floor_division_passes(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/wfasic/timing.py": """\
                def per_pair(total_cycles, n):
                    return total_cycles // max(n, 1)
                """
            }
        )
        assert result.reported == []

    def test_declared_float_rate_exempt(self, lint_tree):
        # An explicit `: float` annotation declares a *rate* (e.g. the
        # CpuTimings calibration constants), which is sanctioned.
        result = lint_tree(
            {
                "src/repro/soc/timings.py": """\
                class CpuTimings:
                    cell_cycles: float = 26.0
                """
            }
        )
        assert result.reported == []

    def test_out_of_scope_ratio_passes(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/metrics/gcups.py": """\
                def gcups(cells, total_cycles, hz):
                    return cells / (total_cycles / hz) / 1e9
                """
            }
        )
        assert result.reported == []

    def test_suppression_on_preceding_comment_line(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/wfasic/timing.py": """\
                def rate(txns, align_cycles):
                    # wfalint: disable=W002 — a rate, not a counter
                    return txns / align_cycles
                """
            }
        )
        assert result.reported == []
        assert _rules_of(result.suppressed) == ["W002"]


class TestW003BlanketExcept:
    def test_bare_except_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/worker.py": """\
                def run(chunk):
                    try:
                        return chunk()
                    except:
                        return None
                """
            }
        )
        assert _rules(result) == ["W003"]

    def test_base_exception_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/worker.py": """\
                def run(chunk):
                    try:
                        return chunk()
                    except BaseException:
                        return None
                """
            }
        )
        assert _rules(result) == ["W003"]

    def test_exception_blanket_passes(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/worker.py": """\
                def run(chunk):
                    try:
                        return chunk()
                    except Exception:
                        return None
                """
            }
        )
        assert result.reported == []

    def test_reraising_handler_passes(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/worker.py": """\
                def run(chunk, log):
                    try:
                        return chunk()
                    except:
                        log("dying")
                        raise
                """
            }
        )
        assert result.reported == []

    def test_out_of_scope_passes(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/wfasic/dbg.py": """\
                def peek(fn):
                    try:
                        return fn()
                    except:
                        return None
                """
            }
        )
        assert result.reported == []


class TestW004MutableDefault:
    def test_display_defaults_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/helpers.py": """\
                def collect(pairs, acc=[]):
                    acc.extend(pairs)
                    return acc

                def index(rows, by={}):
                    return by
                """
            }
        )
        assert _rules(result) == ["W004", "W004"]

    def test_factory_and_kwonly_defaults_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/helpers.py": """\
                def collect(pairs, acc=list(), *, seen=set()):
                    return acc, seen
                """
            }
        )
        assert _rules(result) == ["W004", "W004"]

    def test_none_and_immutable_defaults_pass(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/helpers.py": """\
                def collect(pairs, acc=None, limit=16, shape=(2, 2)):
                    return acc or list(pairs)
                """
            }
        )
        assert result.reported == []


class TestW005PickleBoundary:
    def test_lambda_class_default_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/config.py": """\
                class EngineConfig:
                    transform = lambda self, x: x
                """
            }
        )
        assert _rules(result) == ["W005"]

    def test_field_default_lambda_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/config.py": """\
                from dataclasses import dataclass, field

                @dataclass
                class EngineConfig:
                    probe: object = field(default=lambda: None)
                """
            }
        )
        assert _rules(result) == ["W005"]

    def test_self_assignment_in_backend_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/align/backends.py": """\
                class ScalarBackend:
                    def __init__(self):
                        def kernel(p, t):
                            return 0

                        self.kernel = kernel
                        self.log = open("/tmp/x", "w")
                """
            }
        )
        assert _rules(result) == ["W005", "W005"]

    def test_default_factory_passes(self, lint_tree):
        # field(default_factory=lambda: ...) runs in-process; only its
        # (picklable) result lands on the instance.
        result = lint_tree(
            {
                "src/repro/engine/config.py": """\
                from dataclasses import dataclass, field

                @dataclass
                class EngineConfig:
                    stages: list = field(default_factory=lambda: ["extend"])
                """
            }
        )
        assert result.reported == []

    def test_non_boundary_class_passes(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/helpers.py": """\
                class LocalHelper:
                    key = lambda self, x: x
                """
            }
        )
        assert result.reported == []


class TestW005DescriptorContract:
    """The zero-copy half of W005: no live buffers at the boundary."""

    def test_buffer_in_payload_alias_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/protocol.py": """\
                from multiprocessing.shared_memory import SharedMemory

                ShmChunkPayload = tuple[str, SharedMemory, list[int]]
                """
            }
        )
        assert _rules(result) == ["W005"]
        assert "(arena_id, offset, length)" in result.reported[0].message

    def test_memoryview_in_item_alias_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/protocol.py": """\
                ShmItem = tuple[int, memoryview, int]
                """
            }
        )
        assert _rules(result) == ["W005"]

    def test_buffer_annotation_on_boundary_class_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/config.py": """\
                import numpy as np
                from dataclasses import dataclass

                @dataclass
                class EngineConfig:
                    packed: np.ndarray | None = None
                """
            }
        )
        assert _rules(result) == ["W005"]
        assert "annotated with the live buffer type" in (
            result.reported[0].message
        )

    def test_shared_memory_stored_on_backend_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/align/backends.py": """\
                from multiprocessing.shared_memory import SharedMemory

                class ArenaBackend:
                    def __init__(self, name):
                        self.segment = SharedMemory(name=name)
                """
            }
        )
        assert _rules(result) == ["W005"]
        assert "live `SharedMemory` buffer" in result.reported[0].message

    def test_descriptor_alias_passes(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/protocol.py": """\
                ShmItem = tuple[int, tuple[str, int, int], int, int]
                ShmChunkPayload = tuple[str, bool, str, list[ShmItem]]
                """
            }
        )
        assert result.reported == []

    def test_alias_outside_boundary_paths_passes(self, lint_tree):
        # Same alias in a non-boundary package: out of W005's scope.
        result = lint_tree(
            {
                "src/repro/obs/protocol.py": """\
                TracePayload = tuple[str, memoryview]
                """
            }
        )
        assert result.reported == []

    def test_suppressed_with_justification(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/protocol.py": """\
                DebugPayload = tuple[str, memoryview]  # wfalint: disable=W005 — in-process debug channel, never dispatched
                """
            }
        )
        assert result.reported == []
        assert _rules_of(result.suppressed) == ["W005"]


class TestW006MetricVocabulary:
    def test_typo_name_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/obs_use.py": """\
                def publish(reg):
                    reg.counter("engine_pair_total", "typo'd").inc()
                """
            },
            with_vocabulary=True,
        )
        assert _rules(result) == ["W006"]
        assert "not in the declared vocabulary" in result.reported[0].message

    def test_unknown_label_key_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/obs_use.py": """\
                def publish(reg, n):
                    c = reg.counter("engine_pairs_total", "h")
                    c.inc(n, {"backend": "scalar", "speed": "fast"})
                """
            },
            with_vocabulary=True,
        )
        assert _rules(result) == ["W006"]
        assert "`speed`" in result.reported[0].message

    def test_opaque_name_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/obs_use.py": """\
                def publish(reg, name_from_config):
                    reg.counter(name_from_config, "h").inc()
                """
            },
            with_vocabulary=True,
        )
        assert _rules(result) == ["W006"]
        assert "cannot be verified" in result.reported[0].message

    def test_literal_and_dynamic_patterns_pass(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/obs_use.py": """\
                def publish(reg, prefix, n):
                    reg.counter("engine_pairs_total", "h").inc(n)
                    reg.histogram(f"{prefix}_stage_seconds_total", "h")
                    for name, amount in (
                        ("engine_pairs_total", 1),
                        ("engine_stage_seconds_total", 2),
                    ):
                        reg.counter(name, "h").inc(amount)
                    labels = {"backend": "scalar"}
                    reg.counter("engine_pairs_total", "h").inc(n, labels)
                """
            },
            with_vocabulary=True,
        )
        assert result.reported == []

    def test_unmatched_fstring_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/obs_use.py": """\
                def publish(reg, prefix):
                    reg.counter(f"{prefix}_bogus_suffix", "h")
                """
            },
            with_vocabulary=True,
        )
        assert _rules(result) == ["W006"]

    def test_missing_vocabulary_is_itself_a_finding(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/obs_use.py": """\
                def publish(reg):
                    reg.counter("engine_pairs_total", "h")
                """
            }
        )
        assert _rules(result) == ["W006"]
        assert "no metric vocabulary" in result.reported[0].message


class TestW007WallClockInModel:
    def test_attribute_read_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/soc/model.py": """\
                import time

                def stamp():
                    return time.perf_counter()
                """
            }
        )
        assert _rules(result) == ["W007"]

    def test_from_import_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/wfasic/model.py": """\
                from time import monotonic
                """
            }
        )
        assert _rules(result) == ["W007"]

    def test_engine_layer_may_read_clock(self, lint_tree):
        # Wall-clock profiling belongs to the engine/observability
        # layers; W007 only guards the cycle-accurate models.
        result = lint_tree(
            {
                "src/repro/engine/profile.py": """\
                import time

                def stamp():
                    return time.perf_counter()
                """
            }
        )
        assert result.reported == []

    def test_sleep_is_not_a_clock_read(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/soc/model.py": """\
                import time

                def nap():
                    time.sleep(0.1)
                """
            }
        )
        assert result.reported == []


class TestW008PrintInLibrary:
    def test_print_flagged_as_warning(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/wfasic/dbg.py": """\
                def dump(state):
                    print(state)
                """
            }
        )
        assert _rules(result) == ["W008"]
        assert result.reported[0].severity == "warning"
        # Warnings still fail the run — CI must not accrue them.
        assert result.exit_code == 1

    def test_cli_module_exempt(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/cli.py": """\
                def main():
                    print("summary")
                """
            }
        )
        assert result.reported == []


def _rules_of(findings):
    return sorted(f.rule_id for f in findings)


class TestServeTreeInScope:
    """ISSUE 8: the serving layer is inside the lint gate, not beside it.

    W006's scope is the ``repro/`` path fragment, so ``repro/serve/``
    joined the closed-metrics-vocabulary check the moment it was
    created — these tests pin that (a scope regression to, say,
    ``repro/engine/`` would silently unlint the service), and that the
    real ``serve_*`` vocabulary rows pass clean.
    """

    SERVE_VOCABULARY = """\
    METRIC_NAMES = frozenset({
        "serve_requests_total",
        "serve_request_latency_seconds",
    })
    LABEL_KEYS = frozenset({"kind"})
    """

    def test_undeclared_metric_in_serve_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/serve/scheduler.py": """\
                def publish(reg):
                    reg.counter("serve_bogus_total", "undeclared").inc()
                """
            },
            with_vocabulary=True,
        )
        assert _rules(result) == ["W006"]

    def test_declared_serve_metrics_pass(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/obs/vocabulary.py": self.SERVE_VOCABULARY,
                "src/repro/serve/scheduler.py": """\
                def publish(reg, n):
                    c = reg.counter("serve_requests_total", "by kind")
                    c.inc(n, {"kind": "align"})
                    reg.histogram(
                        "serve_request_latency_seconds", "latency"
                    ).observe(0.01)
                """,
            },
        )
        assert _rules(result) == []

    def test_unknown_label_key_in_serve_flagged(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/obs/vocabulary.py": self.SERVE_VOCABULARY,
                "src/repro/serve/server.py": """\
                def publish(reg):
                    c = reg.counter("serve_requests_total", "by kind")
                    c.inc(1, {"client": "cli"})
                """,
            },
        )
        assert _rules(result) == ["W006"]

    def test_print_in_serve_flagged(self, lint_tree):
        # W008: the server never prints — stdout belongs to the CLI.
        result = lint_tree(
            {
                "src/repro/serve/server.py": """\
                def handle(doc):
                    print("got", doc)
                """
            },
        )
        assert _rules(result) == ["W008"]
