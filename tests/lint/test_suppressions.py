"""Suppression-machinery edge cases: multi-rule directives, decorator
placement, and stale-waiver detection (W015)."""


def _rules(result):
    return sorted(f.rule_id for f in result.reported)


def _suppressed(result):
    return sorted(f.rule_id for f in result.suppressed)


class TestMultiRuleDirectives:
    def test_one_directive_suppresses_two_rules_on_a_line(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/wfasic/pipeline.py": """\
                import random

                def jitter(cycles):
                    # wfalint: disable=W001,W002 — demo uses both waivers
                    return cycles / random.randint(1, 4)
                """
            },
            select={"W001", "W002", "W015"},
        )
        assert result.reported == []
        assert _suppressed(result) == ["W001", "W002"]

    def test_partially_stale_multi_rule_directive_flagged(self, lint_tree):
        # W001 fires and is suppressed; the W002 half excuses nothing.
        result = lint_tree(
            {
                "src/repro/wfasic/pipeline.py": """\
                import random

                def jitter(cycles):
                    # wfalint: disable=W001,W002 — only W001 still real
                    return cycles - random.randint(1, 4)
                """
            },
            select={"W001", "W002", "W015"},
        )
        assert _rules(result) == ["W015"]
        assert "W002" in result.reported[0].message
        assert _suppressed(result) == ["W001"]


class TestDecoratorLineDirectives:
    def test_directive_on_decorator_suppresses_def_line_finding(
        self, lint_tree
    ):
        # The finding anchors on the `def` line (the mutable default);
        # the only comment-capable line of its own is the decorator's.
        result = lint_tree(
            {
                "src/repro/engine/engine.py": """\
                import functools

                @functools.lru_cache  # wfalint: disable=W004 — never mutated
                def lookup(key, extras=[]):
                    return (key, extras)
                """
            },
            select={"W004", "W015"},
        )
        assert result.reported == []
        assert _suppressed(result) == ["W004"]

    def test_directive_on_any_of_several_decorators_works(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/engine.py": """\
                import functools

                @functools.wraps(print)
                @functools.lru_cache  # wfalint: disable=W004 — never mutated
                def lookup(key, extras=[]):
                    return (key, extras)
                """
            },
            select={"W004", "W015"},
        )
        assert result.reported == []
        assert _suppressed(result) == ["W004"]

    def test_undecorated_def_does_not_reach_distant_comments(
        self, lint_tree
    ):
        # Two lines above an undecorated def is out of directive range.
        result = lint_tree(
            {
                "src/repro/engine/engine.py": """\
                # wfalint: disable=W004 — too far away to apply

                def lookup(key, extras=[]):
                    return (key, extras)
                """
            },
            select={"W004"},
        )
        assert _rules(result) == ["W004"]


class TestStaleSuppressions:
    def test_directive_that_suppresses_nothing_is_a_finding(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/wfasic/pipeline.py": """\
                def throughput(cycles, pairs):
                    # wfalint: disable=W002 — historical, code since fixed
                    return cycles // pairs
                """
            },
            select={"W002", "W015"},
        )
        assert _rules(result) == ["W015"]
        finding = result.reported[0]
        assert finding.severity == "warning"
        assert "no longer fires here" in finding.message
        assert finding.line == 2  # the directive line, not the code line

    def test_directive_for_out_of_scope_rule_is_a_finding(self, lint_tree):
        # W002 only applies to the hardware models (wfasic/soc); a
        # waiver for it in the engine tree can never suppress anything.
        result = lint_tree(
            {
                "src/repro/engine/engine.py": """\
                def throughput(cycles, pairs):
                    # wfalint: disable=W002 — copied from a model file
                    return cycles / pairs
                """
            },
            select={"W002", "W015"},
        )
        assert _rules(result) == ["W015"]
        assert "does not even apply to this path" in result.reported[0].message

    def test_disable_all_is_never_judged_stale(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/wfasic/pipeline.py": """\
                def throughput(cycles, pairs):
                    # wfalint: disable=all — generated line, exempt wholesale
                    return cycles // pairs
                """
            },
            select={"W002", "W015"},
        )
        assert result.reported == []

    def test_inactive_target_rule_is_unjudgeable(self, lint_tree):
        # With W002 deselected the run cannot know whether the waiver
        # still excuses anything — no W015.
        result = lint_tree(
            {
                "src/repro/wfasic/pipeline.py": """\
                def throughput(cycles, pairs):
                    # wfalint: disable=W002 — judged only when W002 runs
                    return cycles // pairs
                """
            },
            select={"W015"},
        )
        assert result.reported == []

    def test_stale_finding_can_itself_be_suppressed(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/wfasic/pipeline.py": """\
                def throughput(cycles, pairs):
                    # wfalint: disable=W002,W015 — waiver kept for template
                    return cycles // pairs
                """
            },
            select={"W002", "W015"},
        )
        assert result.reported == []
        assert _suppressed(result) == ["W015"]

    def test_live_directive_is_not_stale(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/wfasic/pipeline.py": """\
                def throughput(cycles, pairs):
                    # wfalint: disable=W002 — fractional rate by contract
                    return cycles / pairs
                """
            },
            select={"W002", "W015"},
        )
        assert result.reported == []
        assert _suppressed(result) == ["W002"]
