"""Framework mechanics: suppressions, fingerprints, registry, scoping."""

import pytest

from tools.wfalint import Finding, Rule, register
from tools.wfalint.core import parse_suppressions


class TestParseSuppressions:
    def test_single_rule_same_line(self):
        lines = ["x = 1", "y = foo()  # wfalint: disable=W001"]
        assert parse_suppressions(lines) == {2: {"W001"}}

    def test_multiple_rules_and_justification(self):
        lines = ["# wfalint: disable=W001,W002 — a rate, not a counter"]
        assert parse_suppressions(lines) == {1: {"W001", "W002"}}

    def test_all(self):
        assert parse_suppressions(["z()  # wfalint: disable=all"]) == {
            1: {"all"}
        }

    def test_lowercase_ids_normalised(self):
        assert parse_suppressions(["# wfalint: disable=w003"]) == {1: {"W003"}}

    def test_justification_words_not_parsed_as_rules(self):
        # The rule list ends at the first non-id token; trailing prose
        # must not turn into bogus rule names.
        (rules,) = parse_suppressions(
            ["# wfalint: disable=W002 W004 looks similar but is prose"]
        ).values()
        assert rules == {"W002"}

    def test_plain_comments_ignored(self):
        lines = ["# wfalint is great", "# disable=W001", "x = 1"]
        assert parse_suppressions(lines) == {}


class TestFingerprint:
    def _finding(self, line, source_line, path="src/repro/a.py"):
        return Finding(
            rule_id="W001",
            severity="error",
            path=path,
            line=line,
            col=0,
            message="m",
            source_line=source_line,
        )

    def test_stable_under_line_drift(self):
        # The same offending code moving down a file (unrelated edits
        # above) keeps its identity — it stays grandfathered.
        a = self._finding(10, "x = random.random()")
        b = self._finding(42, "x = random.random()")
        assert a.fingerprint == b.fingerprint

    def test_changes_when_code_changes(self):
        a = self._finding(10, "x = random.random()")
        b = self._finding(10, "x = random.uniform(0, 1)")
        assert a.fingerprint != b.fingerprint

    def test_changes_across_paths_and_rules(self):
        a = self._finding(10, "x = 1")
        b = self._finding(10, "x = 1", path="src/repro/b.py")
        assert a.fingerprint != b.fingerprint


class TestRegistry:
    def test_bad_id_rejected(self):
        class BadId(Rule):
            id = "X1"

        with pytest.raises(ValueError, match="id like"):
            register(BadId)

    def test_bad_severity_rejected(self):
        class BadSeverity(Rule):
            id = "W999"
            severity = "fatal"

        with pytest.raises(ValueError, match="severity"):
            register(BadSeverity)

    def test_duplicate_id_rejected(self):
        class Dup(Rule):
            id = "W001"  # already taken by the built-in rule
            severity = "error"

        with pytest.raises(ValueError, match="duplicate"):
            register(Dup)


class TestScoping:
    def _rule(self, fragments=(), excludes=()):
        rule = Rule()
        rule.path_fragments = fragments
        rule.exclude_fragments = excludes
        return rule

    def test_empty_fragments_match_everything(self):
        assert self._rule().applies("anything/at/all.py")

    def test_fragment_substring_match(self):
        rule = self._rule(fragments=("repro/wfasic/",))
        assert rule.applies("src/repro/wfasic/extend.py")
        assert not rule.applies("src/repro/engine/engine.py")

    def test_exclude_wins(self):
        rule = self._rule(
            fragments=("repro/",), excludes=("repro/cli.py",)
        )
        assert rule.applies("src/repro/engine/engine.py")
        assert not rule.applies("src/repro/cli.py")
