"""Phase-1 index tests: module naming, imports, call graph, reachability.

These exercise :mod:`tools.wfalint.project` directly (no rules), over
fixture trees shaped like the real package.
"""

import textwrap
from pathlib import Path

import pytest

from tools.wfalint.core import FileContext
from tools.wfalint.project import ProjectIndex, module_name_for


class TestModuleNaming:
    @pytest.mark.parametrize(
        "relpath, expected",
        [
            ("src/repro/serve/server.py", "repro.serve.server"),
            ("src/repro/__init__.py", "repro"),
            ("tools/wfalint/core.py", "tools.wfalint.core"),
            ("tools/wfalint/__init__.py", "tools.wfalint"),
            ("benchmarks/bench_engine.py", "benchmarks.bench_engine"),
        ],
    )
    def test_relpath_to_dotted_name(self, relpath, expected):
        assert module_name_for(relpath) == expected


def _build(tmp_path: Path, files: dict) -> ProjectIndex:
    contexts = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        contexts.append(FileContext.load(path, tmp_path))
    return ProjectIndex.build(contexts, tmp_path)


class TestImportsAndSymbols:
    def test_absolute_and_relative_imports_resolve(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "src/repro/align/arena.py": """\
                class SequenceArena:
                    def close(self):
                        pass
                """,
                "src/repro/engine/engine.py": """\
                import time
                from ..align.arena import SequenceArena
                from repro.align import arena
                """,
            },
        )
        imports = index.modules["repro.engine.engine"].imports
        assert imports["time"] == "time"
        assert imports["SequenceArena"] == "repro.align.arena.SequenceArena"
        assert imports["arena"] == "repro.align.arena"
        assert "repro.align.arena.SequenceArena" in index.classes

    def test_methods_fields_and_attr_types_collected(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "src/repro/serve/scheduler.py": """\
                class MicroBatcher:
                    async def submit(self, request):
                        return request
                """,
                "src/repro/serve/server.py": """\
                import asyncio

                from .scheduler import MicroBatcher

                class AlignmentServer:
                    def __init__(self):
                        self.batcher = MicroBatcher()
                        self._lock = asyncio.Lock()

                    def close(self):
                        pass
                """,
            },
        )
        server = index.classes["repro.serve.server.AlignmentServer"]
        assert {"__init__", "close"} <= server.methods
        assert server.attr_types["batcher"] == "MicroBatcher"
        assert server.attr_types["_lock"] == "asyncio.Lock"


class TestCallResolution:
    def test_self_and_attribute_chains_resolve(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "src/repro/serve/scheduler.py": """\
                class MicroBatcher:
                    async def submit(self, request):
                        return request
                """,
                "src/repro/serve/server.py": """\
                from .scheduler import MicroBatcher

                class AlignmentServer:
                    def __init__(self):
                        self.batcher = MicroBatcher()

                    async def handle(self, request):
                        self.log(request)
                        return await self.batcher.submit(request)

                    def log(self, request):
                        pass
                """,
            },
        )
        handle = index.functions["repro.serve.server.AlignmentServer.handle"]
        targets = {t for call in handle.calls for t in call.targets}
        assert "repro.serve.server.AlignmentServer.log" in targets
        assert "repro.serve.scheduler.MicroBatcher.submit" in targets

    def test_typed_local_and_import_calls_resolve(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "src/repro/serve/scheduler.py": """\
                class MicroBatcher:
                    async def submit(self, request):
                        return request
                """,
                "src/repro/cli.py": """\
                import time

                from .serve.scheduler import MicroBatcher

                def run():
                    time.sleep(1)
                    batcher = MicroBatcher()
                    return batcher.submit(None)
                """,
            },
        )
        run = index.functions["repro.cli.run"]
        targets = {t for call in run.calls for t in call.targets}
        assert "time.sleep" in targets
        assert "repro.serve.scheduler.MicroBatcher" in targets
        assert "repro.serve.scheduler.MicroBatcher.submit" in targets

    def test_unresolvable_calls_record_empty_targets(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "src/repro/cli.py": """\
                def run(writer):
                    writer.drain()
                """
            },
        )
        (call,) = index.functions["repro.cli.run"].calls
        assert call.raw == "writer.drain"
        assert call.targets == ()

    def test_nested_closures_get_their_own_entry(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "src/repro/serve/server.py": """\
                async def handle():
                    async def respond(line):
                        return line

                    return await respond("x")
                """
            },
        )
        qual = "repro.serve.server.handle.<locals>.respond"
        assert index.functions[qual].is_async
        # The closure's body is not attributed to the enclosing def.
        handle_raws = {
            c.raw for c in index.functions["repro.serve.server.handle"].calls
        }
        assert handle_raws == {"respond"}


class TestReachability:
    def test_async_roots_reach_sync_helpers_transitively(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "src/repro/serve/server.py": """\
                from repro.engine.engine import align

                async def handle():
                    return step()

                def step():
                    return align()
                """,
                "src/repro/engine/engine.py": """\
                def align():
                    return 0

                def unrelated():
                    return 1
                """,
            },
        )
        reachable = index.reachable_from({"repro.serve.server.handle"})
        assert "repro.serve.server.step" in reachable
        assert "repro.engine.engine.align" in reachable
        assert "repro.engine.engine.unrelated" not in reachable

    def test_class_call_edges_reach_init(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "src/repro/serve/server.py": """\
                from repro.engine.engine import Engine

                async def handle():
                    return Engine()
                """,
                "src/repro/engine/engine.py": """\
                def warm():
                    return 0

                class Engine:
                    def __init__(self):
                        warm()
                """,
            },
        )
        reachable = index.reachable_from({"repro.serve.server.handle"})
        assert "repro.engine.engine.Engine.__init__" in reachable
        assert "repro.engine.engine.warm" in reachable


class TestGraphDump:
    def test_dump_is_json_shaped_and_complete(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "src/repro/serve/server.py": """\
                import time

                async def handle():
                    time.sleep(1)
                """
            },
        )
        dump = index.graph_dump()
        assert set(dump) == {
            "modules",
            "functions",
            "classes",
            "async_reachable",
        }
        func = dump["functions"]["repro.serve.server.handle"]
        assert func["async"] is True
        assert func["calls"] == [
            {"raw": "time.sleep", "targets": ["time.sleep"], "line": 4}
        ]
        assert dump["async_reachable"] == ["repro.serve.server.handle"]
