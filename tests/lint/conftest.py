"""Shared fixtures for the wfalint test suite.

The linter lives in ``tools/`` (repository tooling, not the installed
package), so this conftest bootstraps the repository root onto
``sys.path``.  Tests build throwaway source trees shaped like the real
package (``<tree>/src/repro/...``) — rule scoping is by path fragment,
so the fixtures exercise exactly the production code paths, with none
of the production code.
"""

import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.wfalint import run_lint  # noqa: E402

#: A minimal metric vocabulary for W006 fixtures (mirrors the shape of
#: the real ``src/repro/obs/vocabulary.py``).
VOCABULARY = """\
METRIC_NAMES = frozenset({
    "engine_pairs_total",
    "engine_stage_seconds_total",
})
LABEL_KEYS = frozenset({"backend", "stage"})
"""


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relpath: source}`` under a tmp tree and lint it.

    Sources are dedented so tests can use indented triple-quoted
    fixtures.  ``with_vocabulary=True`` adds the minimal metrics
    vocabulary module (required by W006 fixtures).  Extra keyword
    arguments go to :func:`tools.wfalint.run_lint`.
    """

    def run(files, *, with_vocabulary=False, **kwargs):
        if with_vocabulary:
            files = {"src/repro/obs/vocabulary.py": VOCABULARY, **files}
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        return run_lint([tmp_path], root=tmp_path, **kwargs)

    run.base = tmp_path
    return run
