"""The wfalint command line: exit codes, JSON report, rule filters."""

import json

import pytest

from tools.wfalint import main as wfalint_main
from tools.wfalint import rule_ids

from .test_baseline import FIXTURE


def _write(base, files):
    import textwrap

    for rel, source in files.items():
        path = base / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path, {"src/repro/clean.py": "x = 1\n"})
        code = wfalint_main([str(tmp_path), "--root", str(tmp_path)])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        _write(tmp_path, FIXTURE)
        code = wfalint_main([str(tmp_path), "--root", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "W001" in out and "gen.py" in out

    def test_unparsable_file_exits_one(self, tmp_path, capsys):
        _write(tmp_path, {"src/repro/broken.py": "def f(:\n"})
        code = wfalint_main([str(tmp_path), "--root", str(tmp_path)])
        assert code == 1
        assert "unparsable" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        code = wfalint_main(
            [str(tmp_path / "nope"), "--root", str(tmp_path)]
        )
        assert code == 2

    def test_unknown_rule_id_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown rule"):
            wfalint_main(
                [str(tmp_path), "--root", str(tmp_path), "--select", "W777"]
            )


class TestFilters:
    def test_select_narrows_rules(self, tmp_path, capsys):
        _write(tmp_path, FIXTURE)
        code = wfalint_main(
            [str(tmp_path), "--root", str(tmp_path), "--select", "W002"]
        )
        assert code == 0  # the W001 violation is out of scope

    def test_ignore_drops_rules(self, tmp_path, capsys):
        _write(tmp_path, FIXTURE)
        code = wfalint_main(
            [str(tmp_path), "--root", str(tmp_path), "--ignore", "W001"]
        )
        assert code == 0


class TestJsonOutput:
    def test_json_format_schema(self, tmp_path, capsys):
        _write(tmp_path, FIXTURE)
        code = wfalint_main(
            [str(tmp_path), "--root", str(tmp_path), "--format", "json"]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 1
        assert doc["summary"]["reported"] == 1
        (finding,) = doc["findings"]
        assert finding["rule"] == "W001"
        assert finding["path"].endswith("gen.py")
        assert finding["fingerprint"]
        # Rule metadata rides along so the artifact is self-describing.
        assert {r["id"] for r in doc["rules"]} == set(rule_ids())

    def test_json_report_artifact(self, tmp_path, capsys):
        _write(tmp_path, FIXTURE)
        report = tmp_path / "wfalint-report.json"
        wfalint_main(
            [
                str(tmp_path),
                "--root",
                str(tmp_path),
                "--json-report",
                str(report),
            ]
        )
        doc = json.loads(report.read_text())
        assert doc["summary"]["reported"] == 1

    def test_summary_reports_analysis_runtime(self, tmp_path, capsys):
        # Schema stays version 1: `analysis_seconds` is additive.
        _write(tmp_path, FIXTURE)
        code = wfalint_main(
            [str(tmp_path), "--root", str(tmp_path), "--format", "json"]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 1
        assert doc["summary"]["analysis_seconds"] >= 0.0


class TestGraphArtifact:
    def test_graph_flag_writes_index_dump(self, tmp_path, capsys):
        _write(
            tmp_path,
            {
                "src/repro/serve/server.py": (
                    "import time\n\n\n"
                    "async def handle():\n"
                    "    time.sleep(1)"
                    "  # wfalint: disable=W009 — fixture, loop is fake\n"
                )
            },
        )
        graph = tmp_path / "wfalint-graph.json"
        code = wfalint_main(
            [str(tmp_path), "--root", str(tmp_path), "--graph", str(graph)]
        )
        assert code == 0
        dump = json.loads(graph.read_text())
        assert "repro.serve.server" in dump["modules"]
        handle = dump["functions"]["repro.serve.server.handle"]
        assert handle["async"] is True
        assert handle["calls"][0]["targets"] == ["time.sleep"]
        assert dump["async_reachable"] == ["repro.serve.server.handle"]

    def test_without_flag_no_graph_is_built(self, tmp_path, capsys):
        _write(tmp_path, {"src/repro/clean.py": "x = 1\n"})
        code = wfalint_main([str(tmp_path), "--root", str(tmp_path)])
        assert code == 0
        assert not (tmp_path / "wfalint-graph.json").exists()


class TestGithubAnnotations:
    def test_reported_findings_become_workflow_commands(
        self, tmp_path, capsys
    ):
        _write(tmp_path, FIXTURE)
        code = wfalint_main(
            [
                str(tmp_path),
                "--root",
                str(tmp_path),
                "--github-annotations",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        (annotation,) = [
            line for line in out.splitlines() if line.startswith("::")
        ]
        assert annotation.startswith("::error file=src/repro/workloads/")
        assert ",line=" in annotation and ",col=" in annotation
        assert "title=wfalint W001" in annotation

    def test_clean_run_emits_no_annotations(self, tmp_path, capsys):
        _write(tmp_path, {"src/repro/clean.py": "x = 1\n"})
        code = wfalint_main(
            [
                str(tmp_path),
                "--root",
                str(tmp_path),
                "--github-annotations",
            ]
        )
        assert code == 0
        assert "::" not in capsys.readouterr().out

    def test_message_newlines_are_escaped(self):
        from tools.wfalint.cli import _annotation_escape

        assert (
            _annotation_escape("a\nb%c\rd") == "a%0Ab%25c%0Dd"
        )


class TestBaselineFlow:
    def test_update_baseline_then_clean(self, tmp_path, capsys):
        _write(tmp_path, FIXTURE)
        baseline = tmp_path / "baseline.json"
        common = [
            str(tmp_path),
            "--root",
            str(tmp_path),
            "--baseline",
            str(baseline),
        ]
        assert wfalint_main(common) == 1
        assert wfalint_main(common + ["--update-baseline"]) == 0
        assert baseline.is_file()
        assert wfalint_main(common) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        _write(tmp_path, FIXTURE)
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"version": 42}')
        code = wfalint_main(
            [
                str(tmp_path),
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 2


class TestListRules:
    def test_lists_every_registered_rule(self, capsys):
        assert wfalint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out
        assert "invariant:" in out


class TestReproWfasicLintSubcommand:
    def test_delegates_and_is_clean_on_this_checkout(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_forwards_arguments(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", "--", "--list-rules"]) == 0
        assert "W001" in capsys.readouterr().out
