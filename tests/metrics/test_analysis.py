"""Tests for batch utilisation analysis."""

from repro.metrics import analyse_batch
from repro.wfasic import WfasicAccelerator, WfasicConfig
from repro.wfasic.packets import encode_input_image, round_up_read_len
from repro.workloads import make_input_set


def run_batch(name, n, aligners=1, backtrace=False):
    pairs = make_input_set(name, n)
    mrl = round_up_read_len(max(p.max_length for p in pairs))
    cfg = WfasicConfig(num_aligners=aligners, backtrace=backtrace)
    return WfasicAccelerator(cfg).run_image(encode_input_image(pairs, mrl), mrl)


class TestAnalyseBatch:
    def test_single_aligner_fully_utilised(self):
        result = run_batch("1K-10%", 4)
        analysis = analyse_batch(result)
        # With one Aligner the makespan is read+align serial: utilisation
        # is align/(align+read), close to 1 for long reads.
        assert 0.9 < analysis.aligner_utilisation <= 1.0
        assert analysis.num_pairs == 4
        assert not analysis.input_bound

    def test_oversubscribed_aligners_idle(self):
        # 100 bp reads with 8 Aligners: the input path saturates (Eq. 7
        # knee ~4), so average utilisation collapses.
        result = run_batch("100-5%", 16, aligners=8)
        analysis = analyse_batch(result)
        assert analysis.aligner_utilisation < 0.5
        assert analysis.reader_utilisation > 0.8
        assert analysis.input_bound

    def test_utilisation_monotone_in_aligners(self):
        utils = []
        for a in (1, 2, 8):
            analysis = analyse_batch(run_batch("100-10%", 16, aligners=a))
            utils.append(analysis.aligner_utilisation)
        assert utils[0] > utils[1] > utils[2]

    def test_output_utilisation_with_backtrace(self):
        with_bt = analyse_batch(run_batch("100-10%", 6, backtrace=True))
        without = analyse_batch(run_batch("100-10%", 6, backtrace=False))
        assert with_bt.output_utilisation > without.output_utilisation

    def test_empty_batch(self):
        cfg = WfasicConfig.paper_default(backtrace=False)
        result = WfasicAccelerator(cfg).run_image(b"", 48)
        analysis = analyse_batch(result)
        assert analysis.makespan == 0
        assert analysis.aligner_utilisation == 0.0

    def test_mean_read_wait_nonnegative(self):
        analysis = analyse_batch(run_batch("100-5%", 8, aligners=2))
        assert analysis.mean_read_wait >= 0
