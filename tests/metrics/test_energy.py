"""Tests for the energy model."""

import pytest

from repro.metrics import EnergyRow, TABLE_ENERGY_ROWS, energy_per_alignment_j


class TestEnergyPerAlignment:
    def test_basic_arithmetic(self):
        # 1 W at 1 GCUPS: 1e8 cells take 0.1 s -> 0.1 J.
        assert energy_per_alignment_j(1.0, 1.0) == pytest.approx(0.1)

    def test_scaling(self):
        # Twice the throughput halves the energy.
        e1 = energy_per_alignment_j(10.0, 100.0)
        e2 = energy_per_alignment_j(10.0, 200.0)
        assert e1 == pytest.approx(2 * e2)

    def test_validation(self):
        with pytest.raises(ValueError):
            energy_per_alignment_j(0, 100)
        with pytest.raises(ValueError):
            energy_per_alignment_j(100, 0)


class TestEnergyRows:
    def test_six_rows(self):
        rows = TABLE_ENERGY_ROWS(61.0, 390.0, 0.312)
        assert len(rows) == 6
        names = [r.platform for r in rows]
        assert "WFAsic [With Backtrace]" in names
        assert "WFAsic [Without Backtrace]" in names

    def test_wfasic_efficiency_dominates(self):
        rows = TABLE_ENERGY_ROWS(61.0, 390.0, 0.312)
        by = {r.platform: r for r in rows}
        wfasic = by["WFAsic [Without Backtrace]"]
        epyc = by["WFA-CPU on AMD EPYC [64 threads]"]
        gpu = by["WFA-GPU [NVIDIA GeForce 3080]"]
        assert wfasic.gcups_per_watt > 1000 * epyc.gcups_per_watt
        assert wfasic.gcups_per_watt > 100 * gpu.gcups_per_watt

    def test_joules_consistent(self):
        row = EnergyRow("x", 2.0, 50.0)
        assert row.joules_per_alignment == pytest.approx(
            energy_per_alignment_j(2.0, 50.0)
        )
