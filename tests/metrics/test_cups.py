"""Unit tests for GCUPS/speedup metrics."""

import pytest

from repro.metrics import (
    TABLE2_REFERENCE_ROWS,
    gcups,
    gcups_from_cycles,
    speedup,
    swg_equivalent_cells,
)


class TestCells:
    def test_full_matrix(self):
        assert swg_equivalent_cells(10_000, 10_000) == 10**8

    def test_degenerate(self):
        assert swg_equivalent_cells(0, 100) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            swg_equivalent_cells(-1, 5)


class TestGcups:
    def test_basic(self):
        assert gcups(1e9, 1.0) == 1.0

    def test_paper_wfasic_row_arithmetic(self):
        # §5.5 sanity: 10 kbp pair = 1e8 cells; at the paper's 281 503
        # cycles (10K-5%, no BT) and 1.1 GHz the GCUPS is ~391 — the
        # Table 2 "Without Backtrace" row.
        value = gcups_from_cycles(10**8, 278_083 + 3_420, 1.1e9)
        assert 380 < value < 400

    def test_validation(self):
        with pytest.raises(ValueError):
            gcups(100, 0)
        with pytest.raises(ValueError):
            gcups_from_cycles(100, 0, 1e9)
        with pytest.raises(ValueError):
            gcups_from_cycles(100, 10, 0)


class TestSpeedup:
    def test_basic(self):
        assert speedup(1000, 10) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(100, 0)


class TestReferenceRows:
    def test_paper_values(self):
        by_name = {r.platform: r for r in TABLE2_REFERENCE_ROWS}
        gact = by_name["GACT-ASIC [Heuristic]"]
        assert gact.gcups == 2129 and gact.area_mm2 == 85.6
        assert round(gact.gcups_per_mm2) == 25
        gpu = by_name["WFA-GPU [NVIDIA GeForce 3080]"]
        assert abs(gpu.gcups_per_mm2 - 0.76) < 0.01

    def test_four_reference_rows(self):
        assert len(TABLE2_REFERENCE_ROWS) == 4
