"""Tests for the CSV figure exporter."""

import pytest

from repro.reporting import read_csv, write_csv


class TestCsvRoundTrip:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "fig9.csv"
        rows = [["100-5%", 124.6, 2.9], ["10K-10%", 1050.0, 303.1]]
        assert write_csv(path, ["input", "nobt", "bt"], rows) == 2
        headers, back = read_csv(path)
        assert headers == ["input", "nobt", "bt"]
        assert back[0] == ["100-5%", "124.6", "2.9"]

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "fig.csv"
        write_csv(path, ["a"], [[1]])
        assert path.exists()

    def test_row_width_checked(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "x.csv", ["a", "b"], [[1]])

    def test_empty_file_rejected_on_read(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_no_rows(self, tmp_path):
        path = tmp_path / "hdr.csv"
        assert write_csv(path, ["a", "b"], []) == 0
        headers, rows = read_csv(path)
        assert headers == ["a", "b"] and rows == []
