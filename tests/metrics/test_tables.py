"""Unit tests for the reporting table formatter."""

import pytest

from repro.reporting import format_comparison, format_table


class TestFormatTable:
    def test_alignment_and_separator(self):
        out = format_table(["a", "value"], [[1, 2.5], [300, 40000.0]])
        lines = out.split("\n")
        assert len(lines) == 4
        assert "---" in lines[1]
        assert lines[0].split(" | ")[0].strip() == "a"

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table 1")
        assert out.startswith("Table 1\n")

    def test_float_formatting(self):
        out = format_table(["v"], [[12345.6], [1.239], [0.0]])
        assert "12,346" in out
        assert "1.24" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_comparison_note(self):
        out = format_comparison(
            ["a"], [[1]], title="T", note="paper reports 2"
        )
        assert out.endswith("note: paper reports 2")
