"""Tests for the ASCII schedule renderer."""

import pytest

from repro.reporting.schedule import render_schedule
from repro.wfasic import WfasicAccelerator, WfasicConfig
from repro.wfasic.packets import encode_input_image, round_up_read_len
from repro.workloads import make_input_set


def run(name="100-10%", n=6, aligners=2):
    pairs = make_input_set(name, n)
    mrl = round_up_read_len(max(p.max_length for p in pairs))
    cfg = WfasicConfig(num_aligners=aligners, backtrace=False)
    return WfasicAccelerator(cfg).run_image(encode_input_image(pairs, mrl), mrl)


class TestRenderSchedule:
    def test_structure(self):
        out = render_schedule(run())
        lines = out.split("\n")
        assert lines[0].startswith("cycles 0..")
        assert lines[1].lstrip().startswith("input")
        assert sum(1 for line in lines if "aligner" in line) == 2

    def test_reads_marked(self):
        out = render_schedule(run())
        input_row = [line for line in out.split("\n") if "input" in line][0]
        assert "r" in input_row

    def test_alignment_digits_present(self):
        out = render_schedule(run(n=3, aligners=1))
        aligner_row = [line for line in out.split("\n") if "aligner" in line][0]
        for digit in "012":
            assert digit in aligner_row

    def test_width_respected(self):
        out = render_schedule(run(), width=40)
        for line in out.split("\n")[1:]:
            assert len(line) <= 40 + 12  # label + bar

    def test_empty_batch(self):
        cfg = WfasicConfig.paper_default(backtrace=False)
        result = WfasicAccelerator(cfg).run_image(b"", 48)
        assert render_schedule(result) == "(empty batch)"

    def test_width_validated(self):
        with pytest.raises(ValueError):
            render_schedule(run(), width=4)
