"""Run manifests: fingerprinting, schema validation, file round-trip."""

import json

import pytest

from repro.obs import (
    RunManifest,
    SchemaError,
    dataset_fingerprint,
    git_revision,
    load_manifest,
)
from repro.workloads import PairGenerator


class TestDatasetFingerprint:
    def test_counts(self):
        digest, num_pairs, total_bases = dataset_fingerprint(
            [("ACGT", "ACG"), ("TT", "TTA")]
        )
        assert num_pairs == 2
        assert total_bases == 4 + 3 + 2 + 3
        assert len(digest) == 64

    def test_deterministic(self):
        pairs = [("ACGT", "ACGA"), ("GG", "GC")]
        assert dataset_fingerprint(pairs) == dataset_fingerprint(pairs)

    def test_boundary_shifts_change_the_digest(self):
        # Same concatenated bases, different pattern/text split.
        a, _, _ = dataset_fingerprint([("AC", "GT")])
        b, _, _ = dataset_fingerprint([("A", "CGT")])
        assert a != b

    def test_pair_order_changes_the_digest(self):
        a, _, _ = dataset_fingerprint([("AA", "CC"), ("GG", "TT")])
        b, _, _ = dataset_fingerprint([("GG", "TT"), ("AA", "CC")])
        assert a != b

    def test_accepts_sequence_pair_objects(self):
        pairs = PairGenerator(length=20, error_rate=0.1, seed=3).batch(4)
        from_objects = dataset_fingerprint(pairs)
        from_tuples = dataset_fingerprint([(p.pattern, p.text) for p in pairs])
        assert from_objects == from_tuples


class TestGitRevision:
    def test_inside_this_repository(self):
        info = git_revision()
        # The reproduction repo is itself a git checkout.
        assert info is not None
        assert len(info["revision"]) == 40
        assert isinstance(info["dirty"], bool)

    def test_outside_a_repository(self, tmp_path):
        assert git_revision(tmp_path) is None


def _manifest() -> RunManifest:
    return RunManifest.for_run(
        command=["repro-wfasic", "batch", "--generate", "100"],
        config={"backend": "batched", "workers": 2},
        pairs=[("ACGT", "ACGA"), ("GGTT", "GGTA")],
        dataset_source="generated:length=100,n=2,error=0.05,seed=0",
        seed=0,
        report={"num_pairs": 2},
        metrics={},
    )


class TestRunManifest:
    def test_as_dict_validates(self):
        doc = _manifest().as_dict()
        assert doc["kind"] == "run_manifest"
        assert doc["schema_version"] == 1
        assert doc["run"]["dataset"]["num_pairs"] == 2

    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "manifest.json"
        written = _manifest().write(path)
        assert load_manifest(path) == written

    def test_metrics_default_to_registry_snapshot(self):
        from repro.obs import MetricsRegistry, set_registry

        fresh = MetricsRegistry()
        fresh.counter("engine_pairs_total").inc(7)
        previous = set_registry(fresh)
        try:
            manifest = RunManifest.for_run(
                command=["x"],
                config={},
                pairs=[("A", "C")],
                dataset_source="test",
            )
        finally:
            set_registry(previous)
        series = manifest.metrics["engine_pairs_total"]["series"]
        assert series[0]["value"] == 7

    def test_seed_may_be_none(self):
        manifest = _manifest()
        manifest.seed = None
        manifest.as_dict()

    def test_tampered_document_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        doc = _manifest().write(path)
        for strip in ("kind", "run", "metrics"):
            broken = {k: v for k, v in doc.items() if k != strip}
            path.write_text(json.dumps(broken))
            with pytest.raises(SchemaError):
                load_manifest(path)

    def test_wrong_schema_version_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        doc = _manifest().write(path)
        doc["schema_version"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(SchemaError):
            load_manifest(path)
