"""CLI round-trip: ``batch --trace --metrics`` artefacts reconcile.

The acceptance criterion for the observability layer: on a real batch
run the manifest's metric counters equal the engine's ``BatchReport``
field-for-field (no drift, no double counting), and the trace document
is schema-valid with both engine wall-clock spans and accelerator
simulated-cycle spans present.
"""

import json

import pytest

from repro.cli import main
from repro.obs import load_manifest, validate_trace_document

NUM_PAIRS = 24


def _counter(snapshot: dict, name: str, labels: dict | None = None):
    """Total of one counter series (summed across labels when None)."""
    doc = snapshot.get(name)
    if doc is None:
        return None
    total = 0
    for entry in doc["series"]:
        if labels is None or entry["labels"] == labels:
            total += entry["value"]
    return total


@pytest.fixture(scope="module")
def artefacts(tmp_path_factory):
    """One observed wfasic-backend batch run shared by every test."""
    tmp = tmp_path_factory.mktemp("obs-cli")
    trace_path = tmp / "trace.json"
    metrics_path = tmp / "manifest.json"
    results_path = tmp / "results.tsv"
    code = main(
        [
            "batch",
            "--generate", "100",
            "-n", str(NUM_PAIRS),
            "--seed", "11",
            "--backend", "wfasic",
            "--chunk-size", "8",
            "--trace", str(trace_path),
            "--metrics", str(metrics_path),
            "-o", str(results_path),
        ]
    )
    assert code == 0
    return {
        "manifest": load_manifest(metrics_path),
        "trace": json.loads(trace_path.read_text()),
        "metrics_path": metrics_path,
    }


class TestManifestReconciliation:
    """Counters in the manifest equal the report, exactly."""

    def test_counters_match_report_field_for_field(self, artefacts):
        doc = artefacts["manifest"]
        report = doc["report"]
        snapshot = doc["metrics"]
        labels = {"backend": "wfasic"}
        for counter, field in (
            ("engine_pairs_total", "num_pairs"),
            ("engine_pairs_aligned_total", "pairs_aligned"),
            ("engine_cache_hits_total", "cache_hits"),
            ("engine_coalesced_total", "coalesced"),
            ("engine_errors_total", "errors"),
            ("engine_rejected_total", "rejected"),
            ("engine_retries_total", "retries"),
            ("engine_swg_cells_total", "swg_cells"),
        ):
            assert _counter(snapshot, counter, labels) == report[field], counter
        assert _counter(snapshot, "engine_batches_total", labels) == 1

    def test_batch_histogram_holds_the_one_run(self, artefacts):
        doc = artefacts["manifest"]
        series = doc["metrics"]["engine_batch_seconds"]["series"][0]["value"]
        assert series["count"] == 1
        assert series["sum"] == pytest.approx(doc["report"]["elapsed_seconds"])

    def test_stage_calls_mirror_the_profile(self, artefacts):
        doc = artefacts["manifest"]
        snapshot = doc["metrics"]
        for stage, entry in doc["report"]["profile"].items():
            labels = {"stage": stage, "backend": "wfasic"}
            assert _counter(snapshot, "engine_stage_calls_total", labels) == (
                entry["calls"]
            ), stage
            assert _counter(
                snapshot, "engine_stage_seconds_total", labels
            ) == pytest.approx(entry["seconds"]), stage

    def test_accelerator_counters_cover_every_pair(self, artefacts):
        snapshot = artefacts["manifest"]["metrics"]
        assert _counter(snapshot, "wfasic_alignments_total") == NUM_PAIRS
        assert _counter(snapshot, "wfasic_batches_total") >= 1
        by_stage = {
            tuple(e["labels"].items()): e["value"]
            for e in snapshot["wfasic_cycles_total"]["series"]
        }
        stages = {k[0][1] for k in by_stage}
        assert {"read", "compute", "extend", "output"} <= stages

    def test_run_identity_recorded(self, artefacts):
        doc = artefacts["manifest"]
        run = doc["run"]
        assert run["command"][0] == "repro-wfasic"
        assert "batch" in run["command"]
        assert run["seed"] == 11
        assert run["config"]["backend"] == "wfasic"
        assert run["dataset"]["num_pairs"] == NUM_PAIRS
        assert run["dataset"]["source"].startswith("generated:")
        # This checkout is a git repository, so revision is captured.
        assert run["git"] is not None and len(run["git"]["revision"]) == 40


class TestTraceDocument:
    def test_schema_valid(self, artefacts):
        validate_trace_document(artefacts["trace"])

    def test_engine_and_accelerator_spans_present(self, artefacts):
        events = artefacts["trace"]["traceEvents"]
        cats = {e.get("cat") for e in events}
        assert "engine" in cats
        assert "engine:chunk" in cats
        assert "wfasic:extractor" in cats
        assert "wfasic:aligner" in cats
        names = {e["name"] for e in events}
        for span in ("batch", "resolve", "dispatch", "gather"):
            assert span in names, span

    def test_one_aligner_span_per_pair(self, artefacts):
        events = artefacts["trace"]["traceEvents"]
        aligns = [e for e in events if e.get("cat") == "wfasic:aligner"]
        assert len(aligns) == NUM_PAIRS

    def test_tracks_are_named(self, artefacts):
        events = artefacts["trace"]["traceEvents"]
        thread_names = {
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert any(n.startswith("aligner") for n in thread_names)
        assert "extractor / input path" in thread_names


class TestMetricsSubcommand:
    def test_pretty_prints_a_manifest(self, artefacts, capsys):
        assert main(["metrics", str(artefacts["metrics_path"])]) == 0
        out = capsys.readouterr().out
        assert "engine_pairs_total{backend=wfasic}" in out
        assert "command : repro-wfasic" in out

    def test_filter_narrows_the_listing(self, artefacts, capsys):
        assert main(
            ["metrics", str(artefacts["metrics_path"]), "--filter", "wfasic_"]
        ) == 0
        out = capsys.readouterr().out
        assert "wfasic_cycles_total" in out
        assert "engine_pairs_total" not in out

    def test_bare_snapshot_accepted(self, artefacts, tmp_path, capsys):
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(artefacts["manifest"]["metrics"]))
        assert main(["metrics", str(path)]) == 0
        assert "engine_pairs_total" in capsys.readouterr().out

    def test_invalid_document_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "run_manifest"}))
        assert main(["metrics", str(path)]) == 1
        assert "invalid manifest" in capsys.readouterr().err
