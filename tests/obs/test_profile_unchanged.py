"""Publishing to the registry must not perturb the profiler numbers.

The observability layer was retrofitted onto ``StageProfiler`` and
``BatchReport.profile``; these differential tests pin that the retrofit
is purely additive — the pre-registry numbers are bit-identical whether
or not anything is published, and the registry mirror agrees with the
profile it mirrors.
"""

import copy

from repro.align.profile import StageProfiler
from repro.engine import BatchAlignmentEngine, EngineConfig
from repro.obs import MetricsRegistry, set_registry
from repro.workloads import PairGenerator


class TestPublishIsAdditive:
    def _profiler(self) -> StageProfiler:
        prof = StageProfiler()
        prof.add("pack", 0.25, calls=3)
        prof.add("compute", 1.5, calls=7)
        prof.count("cache_hit", 4)
        return prof

    def test_as_dict_bit_identical_after_publish(self):
        prof = self._profiler()
        before = copy.deepcopy(prof.as_dict())
        prof.publish(MetricsRegistry())
        assert prof.as_dict() == before

    def test_registry_mirror_matches_the_profile(self):
        prof = self._profiler()
        registry = MetricsRegistry()
        prof.publish(registry, "engine", {"backend": "batched"})
        seconds = registry.counter("engine_stage_seconds_total")
        calls = registry.counter("engine_stage_calls_total")
        for stage, entry in prof.as_dict().items():
            labels = {"stage": stage, "backend": "batched"}
            assert seconds.value(labels) == entry["seconds"]
            assert calls.value(labels) == entry["calls"]

    def test_double_publish_doubles_the_mirror_only(self):
        prof = self._profiler()
        registry = MetricsRegistry()
        prof.publish(registry)
        once = copy.deepcopy(prof.as_dict())
        prof.publish(registry)
        assert prof.as_dict() == once
        labels = {"stage": "compute"}
        assert registry.counter(
            "engine_stage_seconds_total"
        ).value(labels) == 2 * once["compute"]["seconds"]


class TestEngineProfileUnchanged:
    """The report's profile is the same numbers the registry mirrors."""

    def _run(self):
        pairs = PairGenerator(
            length=80, error_rate=0.05, seed=5, max_text_length=80
        ).batch(12)
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            with BatchAlignmentEngine(
                EngineConfig(backend="batched", workers=1, cache_size=0)
            ) as engine:
                result = engine.align_batch(pairs)
        finally:
            set_registry(previous)
        return result.report, registry

    def test_profile_keys_and_mirror_agree(self):
        report, registry = self._run()
        profile = report.profile
        # The engine stages are always present.
        assert {"resolve", "gather"} <= set(profile)
        calls = registry.counter("engine_stage_calls_total")
        seconds = registry.counter("engine_stage_seconds_total")
        for stage, entry in profile.items():
            labels = {"stage": stage, "backend": "batched"}
            assert calls.value(labels) == entry["calls"], stage
            assert seconds.value(labels) == entry["seconds"], stage

    def test_profile_shape_is_the_pre_registry_contract(self):
        report, _ = self._run()
        for entry in report.profile.values():
            assert set(entry) == {"calls", "seconds"}
            assert entry["calls"] >= 0
            assert entry["seconds"] >= 0.0
