"""Tracer: every emitted event must be schema-valid Chrome trace JSON.

Pins the contract stated in ``repro/obs/trace.py``: whatever mix of
span/instant/counter/cycle_span calls a run makes, the resulting
document loads in Perfetto — i.e. every event validates against
``TRACE_EVENT_SCHEMA`` and the file against ``TRACE_DOCUMENT_SCHEMA``.
"""

import json

import pytest

from repro.obs import (
    COLLECTOR_TID,
    ENGINE_PID,
    WFASIC_PID,
    SchemaError,
    Tracer,
    get_tracer,
    install_tracer,
    validate_trace_document,
    validate_trace_event,
)


def _exercised_tracer() -> Tracer:
    """A tracer that has used every event-emitting entry point."""
    tr = Tracer(clock_hz=1e9)
    tr.name_thread(ENGINE_PID, 1, "worker 1234")
    tr.name_thread(WFASIC_PID, 0, "extractor")
    tr.name_thread(WFASIC_PID, COLLECTOR_TID, "collector")
    with tr.span("resolve", "engine"):
        pass
    tr.complete("chunk (8 pairs)", "engine:chunk", 10.0, 5.0, tid=1,
                args={"pairs": 8})
    tr.instant("cache flush", args={"entries": 3})
    tr.counter("inflight", {"chunks": 2})
    tr.cycle_span("read pair 0", "wfasic:extractor", 0.0, 0, 220, tid=0)
    tr.cycle_span("align pair 0", "wfasic:aligner", 0.0, 220, 900, tid=1,
                  args={"score": -12})
    return tr


class TestEventValidity:
    def test_every_event_validates(self):
        tr = _exercised_tracer()
        assert len(tr.events) > 8
        for event in tr.events:
            validate_trace_event(event)

    def test_document_validates(self):
        validate_trace_document(_exercised_tracer().to_dict())

    def test_document_has_display_unit_and_clock(self):
        doc = _exercised_tracer().to_dict()
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["clock_hz"] == 1e9

    def test_x_event_without_dur_rejected(self):
        bad = {"ph": "X", "name": "n", "pid": 1, "tid": 0, "ts": 0.0}
        with pytest.raises(SchemaError):
            validate_trace_event(bad)

    def test_write_round_trips_as_json(self, tmp_path):
        path = tmp_path / "trace.json"
        tr = _exercised_tracer()
        tr.write(path)
        doc = json.loads(path.read_text())
        validate_trace_document(doc)
        assert doc == tr.to_dict()


class TestClockMapping:
    def test_cycle_span_maps_cycles_at_clock_hz(self):
        # 1 MHz: one cycle is exactly one microsecond.
        tr = Tracer(clock_hz=1e6)
        tr.cycle_span("s", "wfasic:aligner", 100.0, 10, 50, tid=1)
        event = tr.events[-1]
        assert event["ts"] == pytest.approx(110.0)
        assert event["dur"] == pytest.approx(40.0)
        assert event["pid"] == WFASIC_PID

    def test_cycles_to_us(self):
        tr = Tracer(clock_hz=1.1e9)
        # 1100 cycles at 1.1 GHz is exactly one microsecond.
        assert tr.cycles_to_us(1100) == pytest.approx(1.0)

    def test_now_us_is_monotonic(self):
        tr = Tracer()
        assert tr.now_us() <= tr.now_us()

    def test_perf_to_us_matches_now_us_basis(self):
        import time

        tr = Tracer()
        stamp = time.perf_counter()
        assert tr.perf_to_us(stamp) == pytest.approx(tr.now_us(), abs=1e3)

    def test_invalid_clock_rejected(self):
        with pytest.raises(ValueError):
            Tracer(clock_hz=0)


class TestTrackMetadata:
    def test_process_names_emitted_on_creation(self):
        tr = Tracer()
        names = {
            (e["pid"], e["args"]["name"])
            for e in tr.events
            if e["name"] == "process_name"
        }
        assert any(pid == ENGINE_PID for pid, _ in names)
        assert any(pid == WFASIC_PID for pid, _ in names)

    def test_name_thread_is_idempotent(self):
        tr = Tracer()
        before = len(tr.events)
        tr.name_thread(ENGINE_PID, 3, "worker 99")
        tr.name_thread(ENGINE_PID, 3, "worker 99")
        assert len(tr.events) == before + 1

    def test_negative_duration_clamped(self):
        tr = Tracer()
        tr.complete("odd", "engine", 5.0, -1.0)
        assert tr.events[-1]["dur"] == 0.0


class TestInstallation:
    def test_install_returns_previous_and_restores(self):
        tr = Tracer()
        previous = install_tracer(tr)
        try:
            assert get_tracer() is tr
        finally:
            install_tracer(previous)
        assert get_tracer() is previous

    def test_none_uninstalls(self):
        previous = install_tracer(None)
        try:
            assert get_tracer() is None
        finally:
            install_tracer(previous)
