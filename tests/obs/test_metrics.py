"""Metrics registry: types, labels, and snapshot/merge semantics.

The load-bearing property is that snapshot merging is associative and
commutative for counters and histograms — that is what lets worker
processes snapshot private registries and ship them to the parent in
any order.
"""

import random

import pytest

from repro.obs import (
    MetricsRegistry,
    format_metrics,
    get_registry,
    merge_snapshots,
    set_registry,
    validate_metrics_snapshot,
)


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("pairs_total", "help")
        c.inc(3)
        c.inc()
        assert c.value() == 4

    def test_labelled_series_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("pairs_total")
        c.inc(2, {"backend": "scalar"})
        c.inc(5, {"backend": "wfasic"})
        assert c.value({"backend": "scalar"}) == 2
        assert c.value({"backend": "wfasic"}) == 5
        assert c.value() == 0

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc(1, {"a": "1", "b": "2"})
        c.inc(1, {"b": "2", "a": "1"})
        assert c.value({"a": "1", "b": "2"}) == 2

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_same_name_same_handle(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")


class TestGauge:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("workers")
        g.set(4)
        g.set(2)
        assert g.value() == 2


class TestHistogram:
    def test_observe_accumulates(self):
        reg = MetricsRegistry()
        h = reg.histogram("seconds", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        snap = reg.snapshot()["seconds"]["series"][0]["value"]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(55.5)
        assert snap["min"] == 0.5
        assert snap["max"] == 50.0
        # One sample per bucket plus one overflow.
        assert snap["counts"] == [1, 1, 1]

    def test_counts_length_is_buckets_plus_one(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0, 3.0)).observe(0.1)
        value = reg.snapshot()["h"]["series"][0]["value"]
        assert len(value["counts"]) == len(value["buckets"]) + 1


def _worker_snapshot(seed: int) -> dict:
    """Simulate one worker's private registry, randomised by seed."""
    rng = random.Random(seed)
    reg = MetricsRegistry()
    c = reg.counter("engine_pairs_total", "pairs")
    for backend in ("scalar", "wfasic"):
        c.inc(rng.randint(0, 50), {"backend": backend})
    reg.gauge("engine_workers", "workers").set(seed)
    h = reg.histogram("engine_batch_seconds", "seconds")
    for _ in range(rng.randint(1, 5)):
        h.observe(rng.random())
    return reg.snapshot()


class TestMergeAcrossWorkers:
    """Snapshots from simulated workers must merge associatively."""

    def _total(self, snap, labels):
        series = snap["engine_pairs_total"]["series"]
        for entry in series:
            if entry["labels"] == labels:
                return entry["value"]
        return 0

    def test_merge_is_associative(self):
        a, b, c = (_worker_snapshot(s) for s in (1, 2, 3))
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right

    def test_merge_is_commutative_for_counters_and_histograms(self):
        a, b, c = (_worker_snapshot(s) for s in (4, 5, 6))
        fwd = merge_snapshots(a, b, c)
        rev = merge_snapshots(c, b, a)
        assert fwd["engine_pairs_total"] == rev["engine_pairs_total"]
        assert fwd["engine_batch_seconds"] == rev["engine_batch_seconds"]

    def test_counter_totals_add(self):
        snaps = [_worker_snapshot(s) for s in range(5)]
        merged = merge_snapshots(*snaps)
        for backend in ("scalar", "wfasic"):
            labels = {"backend": backend}
            assert self._total(merged, labels) == sum(
                self._total(s, labels) for s in snaps
            )

    def test_histogram_counts_and_extrema_merge(self):
        snaps = [_worker_snapshot(s) for s in range(4)]
        merged = merge_snapshots(*snaps)
        values = [s["engine_batch_seconds"]["series"][0]["value"] for s in snaps]
        out = merged["engine_batch_seconds"]["series"][0]["value"]
        assert out["count"] == sum(v["count"] for v in values)
        assert out["sum"] == pytest.approx(sum(v["sum"] for v in values))
        assert out["min"] == min(v["min"] for v in values)
        assert out["max"] == max(v["max"] for v in values)

    def test_merged_snapshot_validates(self):
        merged = merge_snapshots(*(_worker_snapshot(s) for s in range(3)))
        validate_metrics_snapshot(merged)

    def test_bucket_mismatch_rejected(self):
        reg_a = MetricsRegistry()
        reg_a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        reg_b = MetricsRegistry()
        reg_b.histogram("h", buckets=(5.0, 6.0)).observe(0.5)
        with pytest.raises(ValueError):
            merge_snapshots(reg_a.snapshot(), reg_b.snapshot())


class TestDefaultRegistry:
    def test_set_registry_swaps_and_returns_previous(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)

    def test_clear_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.clear()
        assert reg.snapshot() == {}


class TestFormatMetrics:
    def test_empty(self):
        assert "none recorded" in format_metrics({})

    def test_lines_cover_every_series(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(3, {"k": "v"})
        reg.gauge("b").set(1.5)
        reg.histogram("c_seconds").observe(0.2)
        text = format_metrics(reg.snapshot())
        assert "a_total{k=v}" in text
        assert "b" in text
        assert "count=1" in text
