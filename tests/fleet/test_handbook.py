"""The handbook's promise: every number traces to the committed artifact."""

import json
import sys
from pathlib import Path

import pytest

from repro.fleet import (
    WORKED_BUDGETS,
    best_point_for_budget,
    render_handbook_sections,
    run_sweep,
    validate_fleet_sweep,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
ARTIFACT = REPO_ROOT / "docs" / "data" / "fleet_sweep.json"
HANDBOOK = REPO_ROOT / "docs" / "fleet.md"


@pytest.fixture(scope="module")
def doc():
    return json.loads(ARTIFACT.read_text())


class TestCommittedArtifact:
    def test_exists_and_validates(self, doc):
        validate_fleet_sweep(doc)
        assert doc["workload"]["input_set"] == "100-10%"

    def test_reproduces_from_the_default_sweep(self, doc):
        """The artifact is exactly `repro-wfasic fleet sweep`'s output.

        This is the determinism contract docs/fleet.md leans on: anyone
        can regenerate the committed numbers from a clean checkout.
        """
        assert run_sweep() == doc


class TestHandbookSync:
    def test_generated_sections_are_current(self, doc):
        """docs/fleet.md == its own regeneration from the artifact."""
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            from sync_fleet_docs import render_handbook
        finally:
            sys.path.pop(0)
        text = HANDBOOK.read_text()
        assert render_handbook(text) == text

    def test_sections_carry_artifact_numbers(self, doc):
        sections = render_handbook_sections(doc)
        assert set(sections) == {"WORKLOAD", "FRONTIER", "EXAMPLES"}
        text = HANDBOOK.read_text()
        for body in sections.values():
            assert body in text
        # Spot-check: the frontier table carries each frontier point's
        # throughput, formatted the renderer's way.
        for i in doc["frontier"]:
            rate = doc["points"][i]["pairs_per_second"]
            assert f"{rate:,.0f}" in sections["FRONTIER"]


class TestBestPointForBudget:
    def test_canonical_budget_resolves(self, doc):
        # The ISSUE's worked example: 1M pairs/s under 100 mm² and 10 W.
        point = best_point_for_budget(doc, 1e6, 100.0, 10.0)
        assert point is not None
        assert point["pairs_per_second"] >= 1e6
        assert point["soc_area_mm2"] <= 100.0
        assert point["power_w"] <= 10.0

    def test_prefers_fewest_chips_then_area(self, doc):
        point = best_point_for_budget(doc, 1e6, 100.0, 10.0)
        for other in doc["points"]:
            if (
                other["failed_pairs"]
                or other["pairs_per_second"] < 1e6
                or other["soc_area_mm2"] > 100.0
                or other["power_w"] > 10.0
            ):
                continue
            assert (point["chips"], point["soc_area_mm2"]) <= (
                other["chips"],
                other["soc_area_mm2"],
            )

    def test_unreachable_budget_is_none(self, doc):
        assert best_point_for_budget(doc, 1e12, 100.0, 10.0) is None

    def test_worked_budgets_include_an_infeasible_row(self, doc):
        answers = [
            best_point_for_budget(doc, rate, area, power)
            for rate, area, power in WORKED_BUDGETS
        ]
        assert answers[0] is not None
        assert None in answers, "the handbook shows an infeasible answer"
