"""End-to-end capacity-planner behaviour (simulation-verified plans)."""

import pytest

from repro.fleet import FleetBudget, plan_capacity, rate_candidates
from repro.wfasic import WfasicConfig, asic_report, configs_within_budget
from repro.workloads import make_input_set


class TestConfigsWithinBudget:
    def test_unconstrained_walks_the_full_grid(self):
        configs = configs_within_budget()
        assert len(configs) == 8  # 4 section counts x 2 k_max values
        assert all(c.num_aligners == 1 and not c.backtrace for c in configs)

    def test_area_budget_filters_by_soc_area(self):
        cap = 3.0
        kept = configs_within_budget(area_budget_mm2=cap)
        assert kept
        assert all(asic_report(c).soc_area_mm2 <= cap for c in kept)
        dropped = [
            c for c in configs_within_budget() if c not in kept
        ]
        assert all(asic_report(c).soc_area_mm2 > cap for c in dropped)

    def test_include_host_false_uses_accelerator_area(self):
        # A cap between the accelerator area and the SoC area of some
        # configuration admits it only under the bare convention.
        bare = configs_within_budget(area_budget_mm2=1.0, include_host=False)
        soc = configs_within_budget(area_budget_mm2=1.0, include_host=True)
        assert len(bare) > len(soc)

    def test_power_budget_filters(self):
        cap = 0.1
        kept = configs_within_budget(power_budget_w=cap)
        assert kept
        assert all(asic_report(c).power_w <= cap for c in kept)


class TestRateCandidates:
    def test_incapable_configs_are_dropped(self):
        pairs = make_input_set("1K-5%", num_pairs=4)
        short_chip = WfasicConfig(
            num_aligners=1, parallel_sections=16,
            max_read_len=112, k_max=512, backtrace=False,
        )
        long_chip = WfasicConfig(
            num_aligners=1, parallel_sections=64,
            max_read_len=2000, k_max=3998, backtrace=False,
        )
        candidates = rate_candidates([short_chip, long_chip], pairs)
        assert [c.config for c in candidates] == [long_chip]
        assert candidates[0].rate_pairs_per_sec > 0

    def test_host_convention_controls_candidate_area(self):
        pairs = make_input_set("100-10%", num_pairs=8)
        config = WfasicConfig(
            num_aligners=1, parallel_sections=16,
            max_read_len=112, k_max=512, backtrace=False,
        )
        with_host = rate_candidates([config], pairs, include_host=True)
        bare = rate_candidates([config], pairs, include_host=False)
        report = asic_report(config)
        assert with_host[0].area_mm2 == pytest.approx(report.soc_area_mm2)
        assert bare[0].area_mm2 == pytest.approx(report.total_area_mm2)
        assert with_host[0].area_mm2 > bare[0].area_mm2


class TestPlanCapacity:
    def test_feasible_plan_is_simulation_backed(self):
        budget = FleetBudget(pairs_per_sec=1e6, area_mm2=100.0, power_w=10.0)
        plan = plan_capacity(budget)
        assert plan.feasible
        assert plan.simulated_pairs_per_second >= budget.pairs_per_sec
        assert plan.result is not None
        assert plan.result.failed_pairs == 0
        # The simulated fleet itself fits the budgets.
        assert plan.result.total_soc_area_mm2 <= budget.area_mm2
        assert plan.result.total_power_w <= budget.power_w
        # And the plan's own totals agree with the budget convention.
        assert plan.total_area_mm2 <= budget.area_mm2
        assert plan.total_power_w <= budget.power_w
        assert plan.chips == len(plan.result.chips)

    def test_higher_target_needs_no_fewer_chips(self):
        low = plan_capacity(FleetBudget(pairs_per_sec=1e6))
        high = plan_capacity(FleetBudget(pairs_per_sec=4e6))
        assert low.feasible and high.feasible
        assert high.chips >= low.chips

    def test_impossible_target_is_infeasible(self):
        plan = plan_capacity(
            FleetBudget(pairs_per_sec=1e12, area_mm2=10.0, power_w=1.0)
        )
        assert not plan.feasible
        assert plan.config is None and plan.result is None
        assert plan.chips == 0
        doc = plan.as_dict()
        assert doc["feasible"] is False and doc["fleet"] is None

    def test_tight_area_budget_is_infeasible(self):
        # No SoC fits inside 1 mm² (the host alone is ~1.4 mm²).
        plan = plan_capacity(FleetBudget(pairs_per_sec=1e3, area_mm2=1.0))
        assert not plan.feasible
        assert plan.candidates_considered == 0

    def test_custom_workload_labels_plan(self):
        pairs = make_input_set("100-5%", num_pairs=8)
        plan = plan_capacity(
            FleetBudget(pairs_per_sec=1e5), pairs=pairs, batch_pairs=2
        )
        assert plan.feasible
        assert plan.workload == "custom (8 pairs)"
        assert plan.num_pairs == 8

    def test_plan_document_round_trips_config(self):
        plan = plan_capacity(FleetBudget(pairs_per_sec=1e6))
        doc = plan.as_dict()
        assert doc["kind"] == "fleet_plan"
        cfg = doc["config"]
        rebuilt = WfasicConfig(
            num_aligners=cfg["num_aligners"],
            parallel_sections=cfg["parallel_sections"],
            max_read_len=cfg["max_read_len"],
            k_max=cfg["k_max"],
            backtrace=False,
        )
        assert rebuilt == plan.config
