"""DSE sweep: determinism, schema validity, frontier consistency."""

import copy

import pytest

from repro.fleet import (
    SweepGrid,
    dominates,
    pareto_frontier_indices,
    run_sweep,
    validate_fleet_sweep,
)
from repro.fleet.report import SchemaError


SMALL_GRID = SweepGrid(
    parallel_sections=(16, 64),
    k_max_values=(8, 512),
    chip_counts=(1, 2),
    max_read_len=112,
)


@pytest.fixture(scope="module")
def doc():
    return run_sweep(SMALL_GRID, num_pairs=12, batch_pairs=3)


class TestSweepArtifact:
    def test_validates_against_schema(self, doc):
        validate_fleet_sweep(doc)

    def test_covers_the_whole_grid(self, doc):
        assert len(doc["points"]) == 2 * 2 * 2
        seen = {
            (p["parallel_sections"], p["k_max"], p["chips"])
            for p in doc["points"]
        }
        assert len(seen) == 8

    def test_is_deterministic(self, doc):
        again = run_sweep(SMALL_GRID, num_pairs=12, batch_pairs=3)
        assert again == doc

    def test_records_workload_and_scheduler(self, doc):
        assert doc["workload"]["input_set"] == "100-10%"
        assert doc["workload"]["num_pairs"] == 12
        assert doc["scheduler"] == {
            "policy": "least-loaded",
            "batch_pairs": 3,
        }

    def test_physicals_scale_linearly_with_chips(self, doc):
        by_key = {
            (p["parallel_sections"], p["k_max"], p["chips"]): p
            for p in doc["points"]
        }
        one = by_key[(16, 512, 1)]
        two = by_key[(16, 512, 2)]
        assert two["soc_area_mm2"] == pytest.approx(2 * one["soc_area_mm2"])
        assert two["power_w"] == pytest.approx(2 * one["power_w"])

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            SweepGrid(parallel_sections=())
        with pytest.raises(ValueError):
            SweepGrid(chip_counts=(0,))
        with pytest.raises(ValueError):
            run_sweep(SMALL_GRID, policy="random")


class TestFrontierConsistency:
    def test_frontier_matches_flags(self, doc):
        flagged = [i for i, p in enumerate(doc["points"]) if p["on_frontier"]]
        assert flagged == doc["frontier"]
        assert doc["frontier"], "some point is always non-dominated"

    def test_failed_points_never_on_frontier(self, doc):
        # k_max 8 caps the score at 20 (Eq. 6) — far below what ~10
        # differences on a 100bp-10% read cost — so those points fail;
        # they stay in the artifact but off the frontier.
        failed = [p for p in doc["points"] if p["failed_pairs"]]
        assert failed, "the 8-k_max axis should produce capability cliffs"
        assert all(not p["on_frontier"] for p in failed)

    def test_no_frontier_point_is_dominated(self, doc):
        rows = [
            (p["pairs_per_second"], p["soc_area_mm2"], p["energy_per_pair_j"])
            for p in doc["points"]
        ]
        servable = [i for i, p in enumerate(doc["points"]) if not p["failed_pairs"]]
        for i in doc["frontier"]:
            assert not any(
                dominates(rows[j], rows[i]) for j in servable if j != i
            )

    def test_frontier_recomputes_from_points(self, doc):
        servable = [
            (i, (p["pairs_per_second"], p["soc_area_mm2"], p["energy_per_pair_j"]))
            for i, p in enumerate(doc["points"])
            if not p["failed_pairs"]
        ]
        local = pareto_frontier_indices([row for _, row in servable])
        assert sorted(servable[k][0] for k in local) == doc["frontier"]


class TestValidatorRejections:
    def test_rejects_out_of_range_frontier_index(self, doc):
        bad = copy.deepcopy(doc)
        bad["frontier"] = [len(bad["points"])]
        for p in bad["points"]:
            p["on_frontier"] = False
        with pytest.raises(SchemaError, match="out of range"):
            validate_fleet_sweep(bad)

    def test_rejects_flag_mismatch(self, doc):
        bad = copy.deepcopy(doc)
        flip = bad["points"][bad["frontier"][0]]
        flip["on_frontier"] = False
        with pytest.raises(SchemaError, match="disagree"):
            validate_fleet_sweep(bad)

    def test_rejects_wrong_kind(self, doc):
        bad = copy.deepcopy(doc)
        bad["kind"] = "fleet_sweeep"
        with pytest.raises(SchemaError):
            validate_fleet_sweep(bad)

    def test_rejects_missing_point_field(self, doc):
        bad = copy.deepcopy(doc)
        del bad["points"][0]["gcups"]
        with pytest.raises(SchemaError):
            validate_fleet_sweep(bad)
