"""Property-based Pareto-frontier and planner invariants (hypothesis).

The frontier and the selection core are pure functions over plain
tuples, so the handbook's central claims — no dominated point survives,
every excluded point is dominated by a survivor, a returned plan fits
its budgets at minimal chip count — are checked over generated inputs
in milliseconds, with no simulation involved.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.fleet import (
    FleetBudget,
    PlanCandidate,
    dominates,
    pareto_frontier_indices,
    select_plan,
)
from repro.wfasic import WfasicConfig

# (pairs/s up, area down, energy down) triples; coarse grids force ties
# and duplicates, the interesting dominance cases.
points = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=8).map(float),
        st.integers(min_value=1, max_value=8).map(float),
        st.integers(min_value=1, max_value=8).map(float),
    ),
    min_size=1,
    max_size=24,
)

candidates = st.lists(
    st.builds(
        PlanCandidate,
        config=st.just(
            WfasicConfig(
                num_aligners=1, parallel_sections=16,
                max_read_len=112, k_max=512, backtrace=False,
            )
        ),
        rate_pairs_per_sec=st.floats(min_value=1e3, max_value=1e7),
        area_mm2=st.floats(min_value=0.1, max_value=50.0),
        power_w=st.floats(min_value=0.01, max_value=5.0),
    ),
    min_size=0,
    max_size=8,
)

budgets = st.builds(
    FleetBudget,
    pairs_per_sec=st.floats(min_value=1e3, max_value=1e8),
    area_mm2=st.one_of(st.none(), st.floats(min_value=1.0, max_value=200.0)),
    power_w=st.one_of(st.none(), st.floats(min_value=0.1, max_value=20.0)),
)


class TestFrontierInvariants:
    @given(points)
    @settings(max_examples=200)
    def test_no_dominated_point_survives(self, rows):
        frontier = pareto_frontier_indices(rows)
        for i in frontier:
            assert not any(
                dominates(rows[j], rows[i]) for j in range(len(rows))
            )

    @given(points)
    @settings(max_examples=200)
    def test_every_excluded_point_is_dominated_by_a_survivor(self, rows):
        frontier = set(pareto_frontier_indices(rows))
        assert frontier, "a non-empty set always has a non-dominated point"
        for i in range(len(rows)):
            if i in frontier:
                continue
            # Dominance is transitive, so some *frontier* point (not
            # just some point) dominates every excluded one.
            assert any(dominates(rows[j], rows[i]) for j in frontier)

    @given(points, st.randoms(use_true_random=False))
    @settings(max_examples=100)
    def test_frontier_is_permutation_invariant(self, rows, rng):
        order = list(range(len(rows)))
        rng.shuffle(order)
        shuffled = [rows[i] for i in order]
        baseline = {tuple(rows[i]) for i in pareto_frontier_indices(rows)}
        permuted = {
            tuple(shuffled[i]) for i in pareto_frontier_indices(shuffled)
        }
        assert baseline == permuted

    def test_duplicates_all_survive(self):
        rows = [(1.0, 1.0, 1.0), (1.0, 1.0, 1.0), (0.0, 2.0, 2.0)]
        assert pareto_frontier_indices(rows) == [0, 1]

    def test_dominates_is_irreflexive(self):
        assert not dominates((1.0, 2.0, 3.0), (1.0, 2.0, 3.0))


class TestSelectPlanInvariants:
    @given(candidates, budgets)
    @settings(max_examples=200)
    def test_returned_plan_satisfies_every_budget(self, cands, budget):
        plan = select_plan(cands, budget, max_chips=8)
        if plan is None:
            return
        assert plan.predicted_rate >= budget.pairs_per_sec
        if budget.area_mm2 is not None:
            assert plan.total_area_mm2 <= budget.area_mm2
        if budget.power_w is not None:
            assert plan.total_power_w <= budget.power_w

    @given(candidates, budgets)
    @settings(max_examples=200)
    def test_chip_count_is_minimal(self, cands, budget):
        plan = select_plan(cands, budget, max_chips=8, derate=1.0)
        if plan is None or plan.chips == 1:
            return
        # No candidate is feasible at any smaller chip count.
        for chips in range(1, plan.chips):
            for cand in cands:
                fits_area = (
                    budget.area_mm2 is None
                    or chips * cand.area_mm2 <= budget.area_mm2
                )
                fits_power = (
                    budget.power_w is None
                    or chips * cand.power_w <= budget.power_w
                )
                meets_rate = (
                    chips * cand.rate_pairs_per_sec >= budget.pairs_per_sec
                )
                assert not (fits_area and fits_power and meets_rate)

    @given(budgets)
    def test_no_candidates_means_no_plan(self, budget):
        assert select_plan([], budget) is None

    def test_infeasible_iff_no_count_admits_a_candidate(self):
        cand = PlanCandidate(
            config=WfasicConfig(
                num_aligners=1, parallel_sections=16,
                max_read_len=112, k_max=512, backtrace=False,
            ),
            rate_pairs_per_sec=100.0,
            area_mm2=10.0,
            power_w=1.0,
        )
        # Rate needs >= 10 chips but the area cap admits at most 2.
        budget = FleetBudget(pairs_per_sec=1000.0, area_mm2=25.0)
        assert select_plan([cand], budget, derate=1.0) is None
        # Relax the area cap and 10 chips become feasible — and minimal.
        relaxed = FleetBudget(pairs_per_sec=1000.0, area_mm2=500.0)
        plan = select_plan([cand], relaxed, derate=1.0)
        assert plan is not None and plan.chips == 10
