"""Fleet scheduler behaviour: routing, bit-identity, metrics, traces."""

import json

import pytest

from repro.fleet import (
    DEFAULT_CHIP_MEMORY_BYTES,
    FleetChip,
    FleetConfig,
    FleetScheduler,
    chip_trace_tid_base,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, install_tracer
from repro.soc import Soc
from repro.wfasic import WfasicConfig
from repro.workloads import SequencePair, make_input_set


def small_config(**overrides):
    base = dict(
        num_aligners=1, parallel_sections=16,
        max_read_len=112, k_max=512, backtrace=False,
    )
    base.update(overrides)
    return WfasicConfig(**base)


@pytest.fixture(scope="module")
def pairs():
    return make_input_set("100-10%", num_pairs=12)


class TestFleetConfig:
    def test_uniform_builder(self):
        cfg = FleetConfig.uniform(3, small_config())
        assert len(cfg.chips) == 3

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            FleetConfig(chips=())

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            FleetConfig.uniform(1, small_config(), policy="random")

    def test_fleet_backtrace_requires_chip_backtrace(self):
        with pytest.raises(ValueError):
            FleetConfig.uniform(1, small_config(), backtrace=True)


class TestRouting:
    def test_all_pairs_served_and_attributed(self, pairs):
        result = FleetScheduler(
            FleetConfig.uniform(3, small_config(), batch_pairs=2)
        ).run(pairs)
        assert result.num_pairs == len(pairs)
        assert result.unroutable == 0 and result.failed_pairs == 0
        served = {o.pair_id for o in result.outcomes}
        assert served == {p.pair_id for p in pairs}
        assert all(o.chip_index >= 0 for o in result.outcomes)
        # With 6 batches over 3 chips, least-loaded spreads the work.
        assert sum(1 for c in result.chips if c.pairs) >= 2

    def test_requires_unique_pair_ids(self):
        dup = [
            SequencePair("ACGT", "ACGT", pair_id=1),
            SequencePair("ACGA", "ACGT", pair_id=1),
        ]
        with pytest.raises(ValueError, match="unique"):
            FleetScheduler(FleetConfig.uniform(1, small_config())).run(dup)

    def test_unroutable_pair_reported_not_raised(self):
        fleet = FleetConfig.uniform(2, small_config(), batch_pairs=4)
        long_pair = SequencePair("A" * 500, "A" * 500, pair_id=99)
        workload = make_input_set("100-10%", num_pairs=4) + [long_pair]
        result = FleetScheduler(fleet).run(workload)
        assert result.unroutable == 1
        nowhere = [o for o in result.outcomes if o.pair_id == 99]
        assert nowhere[0].chip_index == -1
        assert not nowhere[0].success and not nowhere[0].routed
        # The routable pairs of the mixed batch still get served.
        assert result.failed_pairs == 1  # just the unroutable one

    def test_heterogeneous_capability_routing(self, pairs):
        # One small chip (112 bp) + one big chip: long reads must all
        # land on the big chip.
        fleet = FleetConfig(
            chips=(small_config(), small_config(max_read_len=2000)),
            batch_pairs=2,
        )
        long_pairs = make_input_set("1K-5%", num_pairs=4)
        renumbered = [
            SequencePair(p.pattern, p.text, pair_id=1000 + i)
            for i, p in enumerate(long_pairs)
        ]
        result = FleetScheduler(fleet).run(pairs + renumbered)
        for o in result.outcomes:
            if o.pair_id >= 1000:
                assert o.chip_index == 1

    def test_round_robin_uses_every_chip(self, pairs):
        result = FleetScheduler(
            FleetConfig.uniform(
                3, small_config(), batch_pairs=2, policy="round-robin"
            )
        ).run(pairs)
        assert all(c.batches == 2 for c in result.chips)


class TestBitIdentity:
    def test_fleet_matches_single_chip_scores(self, pairs):
        """Scores/success are independent of fleet shape and batching."""
        single = Soc(small_config()).run_accelerated(pairs)
        for chips, batch_pairs, policy in (
            (2, 2, "least-loaded"),
            (3, 1, "round-robin"),
            (4, 5, "least-loaded"),
        ):
            fleet = FleetScheduler(
                FleetConfig.uniform(
                    chips, small_config(),
                    batch_pairs=batch_pairs, policy=policy,
                )
            ).run(pairs)
            assert {o.pair_id: o.score for o in fleet.outcomes} == single.scores
            assert {
                o.pair_id: o.success for o in fleet.outcomes
            } == single.success

    def test_fleet_backtrace_matches_single_chip_cigars(self, pairs):
        config = small_config(backtrace=True)
        single = Soc(config).run_accelerated(pairs, backtrace=True)
        fleet = FleetScheduler(
            FleetConfig.uniform(2, config, batch_pairs=3, backtrace=True)
        ).run(pairs)
        cigars = {o.pair_id: o.cigar for o in fleet.outcomes}
        assert cigars == {
            pid: None if c is None else c.compact()
            for pid, c in single.cigars.items()
        }


class TestDeterminismAndAccounting:
    def test_identical_runs_are_cycle_identical(self, pairs):
        def run():
            return FleetScheduler(
                FleetConfig.uniform(3, small_config(), batch_pairs=2)
            ).run(pairs)

        a, b = run(), run()
        assert a.makespan_cycles == b.makespan_cycles
        assert [c.busy_cycles for c in a.chips] == [
            c.busy_cycles for c in b.chips
        ]

    def test_makespan_is_max_chip_busy(self, pairs):
        result = FleetScheduler(
            FleetConfig.uniform(2, small_config(), batch_pairs=3)
        ).run(pairs)
        assert result.makespan_cycles == max(
            c.busy_cycles for c in result.chips
        )
        assert result.pairs_per_second > 0
        assert result.energy_per_pair_j > 0

    def test_fleet_memory_default_is_small(self):
        chip = FleetChip(0, small_config())
        assert chip.soc.memory.size == DEFAULT_CHIP_MEMORY_BYTES


class TestObservability:
    def test_metrics_reconcile_with_result(self, pairs):
        registry = MetricsRegistry()
        result = FleetScheduler(
            FleetConfig.uniform(2, small_config(), batch_pairs=3),
            registry=registry,
        ).run(pairs)
        snap = registry.snapshot()

        def value(name, labels=None):
            for series in snap[name]["series"]:
                if series["labels"] == (labels or {}):
                    return series["value"]
            raise AssertionError(f"no series {name} {labels}")

        assert value("fleet_chips") == 2
        assert value("fleet_pairs_total") == result.num_pairs
        assert value("fleet_unroutable_total") == 0
        assert value("fleet_batches_total") == result.batches
        assert value("fleet_makespan_cycles_total") == result.makespan_cycles
        for chip in result.chips:
            assert (
                value("fleet_busy_cycles_total", {"chip": str(chip.index)})
                == chip.busy_cycles
            )

    def test_per_chip_trace_lanes(self, pairs, tmp_path):
        tracer = Tracer()
        previous = install_tracer(tracer)
        try:
            FleetScheduler(
                FleetConfig.uniform(2, small_config(), batch_pairs=3)
            ).run(pairs)
        finally:
            install_tracer(previous)
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        events = json.loads(path.read_text())["traceEvents"]
        lane_names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e.get("name") == "thread_name" and e.get("pid") == 2
        }
        for chip in (0, 1):
            base = chip_trace_tid_base(chip)
            assert lane_names[base].startswith(f"chip {chip} ·")
            assert f"chip {chip} · aligner 0" in lane_names.values()
        # Alignment spans land in each chip's own lane group.
        span_tids = {
            e["tid"]
            for e in events
            if e.get("ph") == "X" and e.get("cat") == "wfasic:aligner"
        }
        assert any(t >= chip_trace_tid_base(1) for t in span_tids)
        assert any(
            chip_trace_tid_base(0) <= t < chip_trace_tid_base(1)
            for t in span_tids
        )
