"""End-to-end ``repro-wfasic serve`` session lifecycle (ISSUE 10).

Regression pins for the two defects the whole-program lint pass
(W009/W014, docs/static-analysis.md) surfaced in ``_serve_session``:

* the ready-file is written **off the event loop** — the file must
  still appear, with the same ``host port`` contents, before the
  server answers traffic (W009: no blocking I/O reachable from the
  loop);
* the SIGTERM handler must **retain** its ``server.shutdown()`` task —
  a garbage-collected fire-and-forget task would leave the session
  hanging forever, which this test converts into a loud timeout
  (W014: discarded ``create_task`` result).

A real subprocess runs the real CLI; pytest only watches the wire.
"""

import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import ServeClient

pytestmark = pytest.mark.slow

SESSION_TIMEOUT = 60.0


def _wait_for(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


@pytest.fixture
def serve_process(tmp_path):
    ready = tmp_path / "ready"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--workers",
            "1",
            "--ready-file",
            str(ready),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        yield proc, ready
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=SESSION_TIMEOUT)


class TestServeSessionLifecycle:
    def test_ready_file_then_sigterm_drains_cleanly(self, serve_process):
        proc, ready = serve_process
        _wait_for(
            lambda: ready.is_file() and ready.read_text().strip(),
            SESSION_TIMEOUT,
            "ready file",
        )
        host, port = ready.read_text().split()

        with ServeClient(host, int(port)) as client:
            response = client.align("ACGT", "ACCT")
        assert response["ok"], response.get("error_kind")

        # The retained-shutdown-task contract: SIGTERM must complete
        # the drain and exit 0.  Before the fix the handler's task
        # could be collected mid-flight, hanging the session — that
        # now fails here as a communicate() timeout.
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=SESSION_TIMEOUT)
        assert proc.returncode == 0, stderr
        assert "pairs" in stdout  # the merged session report printed
        assert "serving on" in stderr
