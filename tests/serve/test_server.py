"""Integration suite for the alignment service (ISSUE 8 satellite 4).

A real :class:`AlignmentServer` runs on an ephemeral port inside a
background thread (its own event loop); real :class:`ServeClient`
sockets talk to it.  Pinned here:

* concurrent clients with duplicate pairs — the cross-client requests
  coalesce through the shared engine (cache/coalesce counters);
* admission control — ``deadline_exceeded`` and ``queue_full`` (with
  the ``retry_after_ms`` hint) surface to the wire;
* graceful drain — queued requests still get real answers, new
  connections are refused, ``/dev/shm`` stays clean;
* the hypothesis property that served responses are **bit-identical**
  to a one-shot :func:`align_pairs` run of the same workload.
"""

import asyncio
import socket
import threading
import time

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.align.arena import leaked_segments
from repro.engine import EngineConfig, align_pairs
from repro.obs import MetricsRegistry
from repro.serve import (
    ERROR_DEADLINE,
    ERROR_PROTOCOL,
    ERROR_QUEUE_FULL,
    AlignmentServer,
    ServeClient,
    ServeConfig,
)

ENGINE = dict(workers=1, backtrace=True)


class RunningServer:
    """An :class:`AlignmentServer` on a background event-loop thread."""

    def __init__(self, engine_config=None, serve_config=None):
        self.registry = MetricsRegistry()
        self.server = AlignmentServer(
            engine_config or EngineConfig(**ENGINE),
            serve_config or ServeConfig(batch_window=0.005),
            port=0,
            registry=self.registry,
        )
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10), "server failed to start"

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.wait_closed()

    @property
    def address(self):
        return self.server.address

    def client(self, **kwargs):
        host, port = self.address
        return ServeClient(host, port, **kwargs)

    def shutdown(self):
        if not self._thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop
        ).result(30)
        self._thread.join(10)


@pytest.fixture
def running_server():
    handles = []

    def launch(engine_config=None, serve_config=None):
        handle = RunningServer(engine_config, serve_config)
        handles.append(handle)
        return handle

    yield launch
    for handle in handles:
        handle.shutdown()


WORKLOAD = [
    ("ACGTACGT", "ACGTACGT"),
    ("ACGTACGT", "ACCTACGA"),
    ("AAAATTTT", "AAACTTTT"),
    ("ACGTACGT", "ACGTACGT"),  # duplicate of pair 0
]


def outcome_doc(outcome):
    """A :class:`PairOutcome` as the wire's response channels."""
    return {
        "ok": outcome.ok,
        "score": outcome.score,
        "success": outcome.success,
        "cigar": outcome.cigar,
        "error_kind": outcome.error_kind,
        "error_msg": outcome.error_msg,
    }


def response_doc(response):
    return {key: response.get(key) for key in (
        "ok", "score", "success", "cigar", "error_kind", "error_msg"
    )}


class TestConcurrentClients:
    def test_eight_clients_bit_identical_with_coalescing(self, running_server):
        handle = running_server()
        expected = [
            outcome_doc(o)
            for o in align_pairs(WORKLOAD, **ENGINE).outcomes
        ]

        results = {}

        def one_client(idx):
            with handle.client() as client:
                results[idx] = client.align_many(WORKLOAD)

        threads = [
            threading.Thread(target=one_client, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert sorted(results) == list(range(8))
        for idx in range(8):
            assert [response_doc(r) for r in results[idx]] == expected

        # 8 clients x 4 pairs over 3 unique keys: at most 3 real
        # alignments ever ran; everything else was served by coalescing
        # within micro-batches or by the shared LRU cache across them.
        with handle.client() as client:
            report = client.stats()["report"]
        assert report["num_pairs"] == 8 * len(WORKLOAD)
        assert report["pairs_aligned"] == 3
        assert (
            report["cache_hits"] + report["coalesced"]
            == 8 * len(WORKLOAD) - 3
        )

    def test_pipelined_requests_fill_batches(self, running_server):
        handle = running_server(
            serve_config=ServeConfig(batch_window=0.05, max_batch=64)
        )
        with handle.client() as client:
            responses = client.align_many(WORKLOAD * 4)
        assert all(r["ok"] for r in responses)
        snap = handle.registry.snapshot()
        sizes = snap["serve_batch_size"]["series"][0]["value"]
        assert sizes["max"] > 1, "pipelined requests never shared a batch"


class TestAdmissionOnTheWire:
    def test_deadline_exceeded(self, running_server):
        handle = running_server(
            serve_config=ServeConfig(batch_window=0.2)
        )
        with handle.client() as client:
            response = client.align("ACGT", "ACCT", deadline_ms=0.001)
        assert response["ok"] is False
        assert response["error_kind"] == ERROR_DEADLINE

    def test_queue_full_with_retry_hint(self, running_server):
        handle = running_server(
            serve_config=ServeConfig(batch_window=0.3, max_queue_depth=2)
        )
        with handle.client() as client:
            responses = client.align_many(
                [("ACGT", "ACCT")] * 8
            )
        rejected = [
            r for r in responses if r.get("error_kind") == ERROR_QUEUE_FULL
        ]
        served = [r for r in responses if r["ok"]]
        assert rejected, "no request ever saw the bounded queue"
        assert served, "admission rejected everything"
        assert all(r["retry_after_ms"] >= 1.0 for r in rejected)

    def test_protocol_error_keeps_connection_alive(self, running_server):
        handle = running_server()
        with handle.client() as client:
            client._fh.write(b'{"type": "align", "pattern": "A"}\n')
            client._fh.write(b"this is not json\n")
            client._fh.flush()
            bad_request = client._recv()
            bad_json = client._recv()
            alive = client.align("ACGT", "ACGT")
        for doc in (bad_request, bad_json):
            assert doc["ok"] is False
            assert doc["error_kind"] == ERROR_PROTOCOL
        assert bad_request["id"] is None and bad_json["id"] is None
        assert alive["ok"] is True and alive["score"] == 0

    def test_ping(self, running_server):
        with running_server().client() as client:
            assert client.ping()["type"] == "pong"

    def test_stats_document(self, running_server):
        handle = running_server()
        with handle.client() as client:
            client.align("ACGT", "ACCT")
            doc = client.stats()
        assert doc["ok"] is True and doc["type"] == "stats"
        assert doc["uptime_seconds"] > 0
        assert doc["queue_depth"] == 0
        assert "serve_requests_total" in doc["metrics"]
        assert doc["report"]["num_pairs"] == 1


class TestGracefulDrain:
    def test_drain_answers_queued_work_and_refuses_new_connections(self):
        handle = RunningServer(
            serve_config=ServeConfig(batch_window=0.5)
        )
        client = handle.client()
        try:
            # Pipeline into the open window, then shut down while the
            # batch is still accumulating: drain must answer them all.
            ids = []
            for pattern, text in WORKLOAD:
                request_id = client._fresh_id()
                ids.append(request_id)
                client._send({
                    "type": "align", "id": request_id,
                    "pattern": pattern, "text": text,
                })
            client._fh.flush()
            # Give the loop time to admit the lines into the still-open
            # batch window before the drain begins.
            time.sleep(0.15)
            handle.shutdown()
            answers = [client._recv() for _ in ids]
            assert {a["id"] for a in answers} == set(ids)
            assert all(a["ok"] for a in answers)
        finally:
            client.close()
        host, port = handle.address
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2)
        assert leaked_segments() == []

    def test_shutdown_is_idempotent(self):
        handle = RunningServer()
        handle.shutdown()
        handle.shutdown()
        assert leaked_segments() == []


class TestBitIdentity:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        pairs=st.lists(
            st.tuples(
                st.text(alphabet="ACGTN", max_size=32),
                st.text(alphabet="ACGTN", max_size=32),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_served_responses_match_one_shot_align_pairs(
        self, running_server, pairs
    ):
        handle = getattr(self, "_handle", None)
        if handle is None:
            handle = self._handle = running_server()
        expected = [
            outcome_doc(o) for o in align_pairs(pairs, **ENGINE).outcomes
        ]
        with handle.client() as client:
            responses = client.align_many(pairs)
        assert [response_doc(r) for r in responses] == expected
