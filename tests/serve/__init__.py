"""Tests for the alignment service (`repro.serve`)."""
