"""Unit tests for the micro-batching scheduler (admission control).

No sockets here: the :class:`MicroBatcher` is driven directly on a
private event loop per test (the suite has no async plugin — each test
owns its loop via ``asyncio.run``), against a real single-worker
engine.  The socket/connection layer has its own suite in
``test_server.py``.
"""

import asyncio
import time

import pytest

from repro.engine import BatchAlignmentEngine, EngineConfig
from repro.obs import MetricsRegistry
from repro.serve import (
    ERROR_DEADLINE,
    ERROR_QUEUE_FULL,
    ERROR_SHUTTING_DOWN,
    AlignRequest,
    MicroBatcher,
    ServeConfig,
)

PAIRS = [("ACGT", "ACGT"), ("ACGT", "ACCT"), ("AAAA", "AATA")]


def run_batcher(coro_fn, config=None, *, registry=None):
    """Run ``coro_fn(batcher)`` against a fresh engine + batcher."""

    async def main():
        with BatchAlignmentEngine(EngineConfig(workers=1)) as engine:
            batcher = MicroBatcher(engine, config, registry=registry)
            batcher.start()
            try:
                return await coro_fn(batcher)
            finally:
                await batcher.drain()

    return asyncio.run(main())


def request(i, pattern="ACGT", text="ACCT", deadline_ms=None):
    return AlignRequest(
        request_id=i, pattern=pattern, text=text, deadline_ms=deadline_ms
    )


class TestDispatch:
    def test_single_request_round_trip(self):
        async def go(batcher):
            return await batcher.submit(request(1, "ACGT", "ACGT"))

        doc = run_batcher(go, ServeConfig(batch_window=0.0))
        assert doc == {
            "id": 1,
            "ok": True,
            "score": 0,
            "success": True,
            "cigar": None,
            "error_kind": None,
            "error_msg": None,
        }

    def test_concurrent_submissions_share_a_batch(self):
        async def go(batcher):
            docs = await asyncio.gather(
                *(batcher.submit(request(i, p, t))
                  for i, (p, t) in enumerate(PAIRS))
            )
            return docs

        registry = MetricsRegistry()
        docs = run_batcher(
            go, ServeConfig(batch_window=0.05), registry=registry
        )
        assert [d["id"] for d in docs] == [0, 1, 2]
        assert all(d["ok"] for d in docs)
        # One window, one batch: the whole gather dispatched together.
        snap = registry.snapshot()
        assert snap["serve_batches_total"]["series"][0]["value"] == 1
        sizes = snap["serve_batch_size"]["series"][0]["value"]
        assert sizes["count"] == 1 and sizes["max"] == len(PAIRS)

    def test_full_batch_closes_window_early(self):
        config = ServeConfig(batch_window=30.0, max_batch=3)

        async def go(batcher):
            start = time.perf_counter()
            await asyncio.gather(
                *(batcher.submit(request(i, p, t))
                  for i, (p, t) in enumerate(PAIRS))
            )
            return time.perf_counter() - start

        # With a 30 s window, only the early close explains a fast run.
        assert run_batcher(go, config) < 5.0

    def test_cross_client_duplicates_coalesce_in_engine(self):
        async def go(batcher):
            docs = await asyncio.gather(
                *(batcher.submit(request(i, "ACGT", "ACCT"))
                  for i in range(6))
            )
            report = batcher.session_report()
            return docs, report

        docs, report = run_batcher(go, ServeConfig(batch_window=0.05))
        assert len({d["score"] for d in docs}) == 1
        # Six identical requests, one window: one real alignment, the
        # rest folded by within-batch coalescing (or served by the LRU
        # cache if a straggler lands in a second batch).
        assert report.num_pairs == 6
        assert report.pairs_aligned == 1
        assert report.coalesced + report.cache_hits == 5


class TestAdmission:
    def test_queue_full_rejected_with_retry_hint(self):
        async def go(batcher):
            # Fill the queue directly (without waking the loop) so the
            # depth is exactly at capacity when the real submit arrives.
            batcher._queue.extend(
                _pending(asyncio.get_running_loop(), i) for i in range(2)
            )
            return await batcher.submit(request(99))

        doc = run_batcher(go, ServeConfig(max_queue_depth=2))
        assert doc["ok"] is False
        assert doc["error_kind"] == ERROR_QUEUE_FULL
        assert doc["retry_after_ms"] >= 1.0

    def test_deadline_expired_in_queue_never_dispatches(self):
        async def go(batcher):
            stale = batcher.submit(
                request(1, deadline_ms=0.001)
            )
            await asyncio.sleep(0.03)  # deadline passes inside the window
            return await stale

        doc = run_batcher(go, ServeConfig(batch_window=0.02))
        assert doc["ok"] is False
        assert doc["error_kind"] == ERROR_DEADLINE

    def test_default_deadline_applies_when_request_has_none(self):
        config = ServeConfig(batch_window=0.05, default_deadline_ms=0.001)

        async def go(batcher):
            stale = batcher.submit(request(1))
            await asyncio.sleep(0.03)
            return await stale

        assert run_batcher(go, config)["error_kind"] == ERROR_DEADLINE

    def test_draining_rejects_new_submissions(self):
        async def go(batcher):
            await batcher.drain()
            return await batcher.submit(request(1))

        doc = run_batcher(go)
        assert doc["error_kind"] == ERROR_SHUTTING_DOWN

    def test_drain_still_answers_queued_requests(self):
        async def go(batcher):
            pending = [
                asyncio.ensure_future(batcher.submit(request(i, p, t)))
                for i, (p, t) in enumerate(PAIRS)
            ]
            await asyncio.sleep(0)  # queued, not yet dispatched
            await batcher.drain()
            return [await f for f in pending]

        docs = run_batcher(go, ServeConfig(batch_window=60.0))
        assert [d["ok"] for d in docs] == [True, True, True]


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_window": -0.001},
            {"max_batch": 0},
            {"max_queue_depth": 0},
            {"default_deadline_ms": 0},
            {"default_deadline_ms": -1},
        ],
    )
    def test_bounds(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)


class TestSessionReport:
    def test_none_before_first_batch(self):
        async def go(batcher):
            return batcher.session_report()

        assert run_batcher(go) is None

    def test_uses_session_wall_clock(self):
        async def go(batcher):
            await batcher.submit(request(1))
            await asyncio.sleep(0.05)  # idle time the sum would drop
            await batcher.submit(request(2))
            return batcher.session_report()

        report = run_batcher(go, ServeConfig(batch_window=0.0))
        assert report.num_pairs == 2
        # Wall span includes the idle gap; the per-batch sum cannot.
        assert report.elapsed_seconds >= 0.05


def _pending(loop, i):
    from repro.serve.scheduler import _Pending

    return _Pending(
        request=request(i),
        future=loop.create_future(),
        arrival=time.perf_counter(),
        expires=None,
    )


class TestMultiInstance:
    """The ``instances`` pool: N engines behind the shared queue."""

    @staticmethod
    def run_multi(coro_fn, config=None, *, instances=2, registry=None):
        """Run ``coro_fn(batcher, engines)`` against an engine pool."""

        async def main():
            engines = [
                BatchAlignmentEngine(EngineConfig(workers=1))
                for _ in range(instances)
            ]
            try:
                batcher = MicroBatcher(engines, config, registry=registry)
                batcher.start()
                try:
                    return await coro_fn(batcher, engines)
                finally:
                    await batcher.drain()
            finally:
                for engine in engines:
                    engine.close()

        return asyncio.run(main())

    def test_config_rejects_zero_instances(self):
        with pytest.raises(ValueError):
            ServeConfig(instances=0)

    def test_empty_engine_pool_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher([])

    def test_round_trip_through_the_pool(self):
        async def go(batcher, engines):
            return await asyncio.gather(
                *(batcher.submit(request(i, p, t))
                  for i, (p, t) in enumerate(PAIRS * 3))
            )

        docs = self.run_multi(
            go, ServeConfig(batch_window=0.0, max_batch=2), instances=3
        )
        assert [d["id"] for d in docs] == list(range(9))
        assert all(d["ok"] for d in docs)

    def test_concurrent_batches_use_distinct_engines(self):
        served = []

        async def go(batcher, engines):
            for idx, engine in enumerate(engines):
                orig = engine.align_batch

                def spy(pairs, *, _idx=idx, _orig=orig):
                    served.append(_idx)
                    time.sleep(0.05)  # hold the engine busy
                    return _orig(pairs)

                engine.align_batch = spy
            return await asyncio.gather(
                *(batcher.submit(request(i)) for i in range(4))
            )

        docs = self.run_multi(
            go, ServeConfig(batch_window=0.0, max_batch=1), instances=2
        )
        assert all(d["ok"] for d in docs)
        # Four one-request batches over two engines held busy 50 ms
        # each: the second batch cannot wait for the first engine.
        assert set(served) == {0, 1}

    def test_drain_answers_queued_requests(self):
        async def go(batcher, engines):
            pending = [
                asyncio.ensure_future(batcher.submit(request(i, p, t)))
                for i, (p, t) in enumerate(PAIRS)
            ]
            await asyncio.sleep(0)  # queued, not yet dispatched
            await batcher.drain()
            return [await f for f in pending]

        docs = self.run_multi(go, ServeConfig(batch_window=60.0))
        assert [d["ok"] for d in docs] == [True, True, True]

    def test_session_report_spans_the_pool(self):
        async def go(batcher, engines):
            await asyncio.gather(
                *(batcher.submit(request(i)) for i in range(4))
            )
            return batcher.session_report()

        report = self.run_multi(
            go, ServeConfig(batch_window=0.0, max_batch=1), instances=2
        )
        assert report.num_pairs == 4

    def test_singleton_pool_takes_the_single_engine_path(self):
        async def go(batcher, engines):
            assert batcher.engine is engines[0]
            return await batcher.submit(request(7))

        doc = self.run_multi(go, ServeConfig(batch_window=0.0), instances=1)
        assert doc["ok"] and doc["id"] == 7
