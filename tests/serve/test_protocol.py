"""Unit tests for the NDJSON wire protocol."""

import json

import pytest

from repro.engine import PairOutcome
from repro.serve import (
    ERROR_QUEUE_FULL,
    AlignRequest,
    ControlRequest,
    ProtocolError,
    align_response,
    decode_line,
    encode_line,
    error_response,
    parse_request,
)


class TestParseRequest:
    def test_minimal_align(self):
        req = parse_request(b'{"pattern": "ACGT", "text": "ACCT"}')
        assert req == AlignRequest(
            request_id=None, pattern="ACGT", text="ACCT", deadline_ms=None
        )

    def test_full_align(self):
        req = parse_request(
            '{"type": "align", "id": 7, "pattern": "A", "text": "T", '
            '"deadline_ms": 250}'
        )
        assert isinstance(req, AlignRequest)
        assert req.request_id == 7
        assert req.deadline_ms == 250.0

    @pytest.mark.parametrize("kind", ["ping", "stats"])
    def test_control_kinds(self, kind):
        req = parse_request(json.dumps({"type": kind, "id": "x"}))
        assert req == ControlRequest(request_id="x", kind=kind)

    @pytest.mark.parametrize(
        "line",
        [
            b"not json",
            b'["a", "list"]',
            b'{"type": "frobnicate"}',
            b'{"type": "align", "pattern": "A"}',
            b'{"pattern": 1, "text": "T"}',
            b'{"pattern": "A", "text": "T", "deadline_ms": "soon"}',
            b'{"pattern": "A", "text": "T", "deadline_ms": 0}',
            b'{"pattern": "A", "text": "T", "deadline_ms": -5}',
            b'{"pattern": "A", "text": "T", "deadline_ms": true}',
        ],
    )
    def test_invalid_lines_rejected(self, line):
        with pytest.raises(ProtocolError):
            parse_request(line)

    def test_missing_fields_named(self):
        with pytest.raises(ProtocolError, match="pattern, text"):
            parse_request(b"{}")


class TestResponses:
    def test_align_response_mirrors_outcome_channels(self):
        outcome = PairOutcome(
            slot=0,
            score=12,
            success=True,
            cigar="4M",
            ok=True,
            error_kind=None,
            error_msg=None,
        )
        doc = align_response(9, outcome)
        assert doc == {
            "id": 9,
            "ok": True,
            "score": 12,
            "success": True,
            "cigar": "4M",
            "error_kind": None,
            "error_msg": None,
        }

    def test_error_response_shape(self):
        doc = error_response(None, ERROR_QUEUE_FULL, "full", retry_after_ms=8.0)
        assert doc["ok"] is False
        assert doc["error_kind"] == ERROR_QUEUE_FULL
        assert doc["retry_after_ms"] == 8.0
        # Without the hint the key is absent, not null.
        assert "retry_after_ms" not in error_response(None, "x", "y")


class TestWire:
    def test_encode_decode_roundtrip(self):
        doc = {"id": 3, "ok": True, "score": -4}
        line = encode_line(doc)
        assert line.endswith(b"\n")
        assert decode_line(line) == doc

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ProtocolError):
            decode_line(b"42")
