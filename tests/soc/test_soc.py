"""Tests for the SoC top level and both execution flows."""

import pytest

from repro.align import swg_align
from repro.soc import Soc
from repro.wfasic import WfasicConfig
from repro.workloads import make_input_set

from tests.util import assert_valid_cigar


class TestAcceleratedFlow:
    def test_scores_and_success(self):
        pairs = make_input_set("100-10%", 5)
        soc = Soc(WfasicConfig.paper_default(backtrace=False))
        out = soc.run_accelerated(pairs)
        for p in pairs:
            assert out.success[p.pair_id]
            assert out.scores[p.pair_id] == swg_align(p.pattern, p.text).score
            assert out.cigars[p.pair_id] is None  # backtrace off

    def test_backtrace_flow_produces_cigars(self):
        pairs = make_input_set("100-10%", 4)
        soc = Soc(WfasicConfig.paper_default(backtrace=True))
        out = soc.run_accelerated(pairs)
        for p in pairs:
            assert_valid_cigar(
                out.cigars[p.pair_id], p.pattern, p.text,
                soc.config.penalties, out.scores[p.pair_id],
            )
        assert out.cpu_backtrace_cycles > 0
        assert out.cpu_driver_cycles > 0
        assert out.total_cycles == (
            out.cpu_driver_cycles
            + out.accelerator_cycles
            + out.cpu_backtrace_cycles
        )

    def test_backtrace_off_no_cpu_cost(self):
        pairs = make_input_set("100-5%", 3)
        soc = Soc(WfasicConfig.paper_default(backtrace=False))
        out = soc.run_accelerated(pairs)
        assert out.cpu_backtrace_cycles == 0
        assert out.backtrace_work is None

    def test_multi_aligner_uses_separation_by_default(self):
        pairs = make_input_set("100-10%", 6)
        soc = Soc(WfasicConfig(num_aligners=2, backtrace=True))
        out = soc.run_accelerated(pairs)
        assert out.backtrace_work.separation_bytes > 0
        for p in pairs:
            assert out.success[p.pair_id]

    def test_single_aligner_skips_separation_by_default(self):
        pairs = make_input_set("100-10%", 4)
        soc = Soc(WfasicConfig.paper_default(backtrace=True))
        out = soc.run_accelerated(pairs)
        assert out.backtrace_work.separation_bytes == 0

    def test_forced_separation_on_single_aligner(self):
        pairs = make_input_set("100-10%", 4)
        soc = Soc(WfasicConfig.paper_default(backtrace=True))
        out = soc.run_accelerated(pairs, separate=True)
        assert out.backtrace_work.separation_bytes > 0

    def test_back_to_back_batches(self):
        soc = Soc(WfasicConfig.paper_default(backtrace=False))
        for _ in range(3):
            pairs = make_input_set("100-5%", 2)
            out = soc.run_accelerated(pairs)
            assert all(out.success.values())


class TestCpuFlow:
    def test_scores_exact(self):
        pairs = make_input_set("100-10%", 5)
        soc = Soc()
        out = soc.run_cpu(pairs)
        for p in pairs:
            assert out.scores[p.pair_id] == swg_align(p.pattern, p.text).score

    def test_vector_faster(self):
        pairs = make_input_set("1K-5%", 2)
        soc = Soc()
        scalar = soc.run_cpu(pairs, vector=False)
        vec = soc.run_cpu(pairs, vector=True)
        assert vec.cycles < scalar.cycles
        assert scalar.scores == vec.scores

    def test_per_pair_sum(self):
        pairs = make_input_set("100-5%", 4)
        out = Soc().run_cpu(pairs)
        assert sum(out.per_pair_cycles.values()) == out.cycles


class TestSpeedupBands:
    """The headline result: speedups within the paper's reported bands."""

    def test_short_reads_speedup_band(self):
        pairs = make_input_set("100-5%", 6)
        soc = Soc(WfasicConfig.paper_default(backtrace=False))
        acc = soc.run_accelerated(pairs, backtrace=False)
        cpu = soc.run_cpu(pairs)
        speedup = cpu.cycles / acc.total_cycles
        # Paper: 143x at 100-5%.  Accept a band around it.
        assert 70 < speedup < 300

    def test_speedup_grows_with_length(self):
        soc = Soc(WfasicConfig.paper_default(backtrace=False))
        speedups = []
        for name, n in (("100-5%", 4), ("1K-5%", 2)):
            pairs = make_input_set(name, n)
            acc = soc.run_accelerated(pairs, backtrace=False)
            cpu = soc.run_cpu(pairs)
            speedups.append(cpu.cycles / acc.total_cycles)
        assert speedups[1] > speedups[0]

    def test_backtrace_speedup_lower_than_no_backtrace(self):
        pairs = make_input_set("100-10%", 4)
        soc_n = Soc(WfasicConfig.paper_default(backtrace=False))
        soc_b = Soc(WfasicConfig.paper_default(backtrace=True))
        cpu = soc_n.run_cpu(pairs)
        s_n = cpu.cycles / soc_n.run_accelerated(pairs).total_cycles
        s_b = cpu.cycles / soc_b.run_accelerated(pairs).total_cycles
        assert s_b < s_n
