"""Tests for the overlapped (pipelined) batch flow."""

from repro.align import swg_align
from repro.soc import Soc
from repro.soc.overlap import run_overlapped
from repro.wfasic import WfasicConfig
from repro.workloads import make_input_set


def batches(name, per_batch, count):
    pairs = make_input_set(name, per_batch * count)
    return [pairs[i * per_batch : (i + 1) * per_batch] for i in range(count)]


class TestOverlappedFlow:
    def test_results_identical_to_sequential(self):
        soc = Soc(WfasicConfig.paper_default(backtrace=True))
        bs = batches("100-10%", 3, 3)
        out = run_overlapped(soc, bs)
        for batch, outcome in zip(bs, out.outcomes):
            for p in batch:
                assert outcome.scores[p.pair_id] == swg_align(p.pattern, p.text).score

    def test_pipelining_saves_cycles(self):
        soc = Soc(WfasicConfig.paper_default(backtrace=True))
        out = run_overlapped(soc, batches("1K-5%", 2, 4))
        assert out.overlapped_cycles < out.sequential_cycles
        assert out.speedup > 1.1

    def test_speedup_bounded_by_two(self):
        soc = Soc(WfasicConfig.paper_default(backtrace=True))
        out = run_overlapped(soc, batches("100-10%", 3, 4))
        assert 1.0 <= out.speedup <= 2.0

    def test_no_backtrace_no_overlap_gain(self):
        # With backtrace off the CPU stage is empty: nothing to overlap.
        soc = Soc(WfasicConfig.paper_default(backtrace=False))
        out = run_overlapped(soc, batches("100-5%", 3, 3), backtrace=False)
        assert out.speedup == 1.0

    def test_single_batch_degenerate(self):
        soc = Soc(WfasicConfig.paper_default(backtrace=True))
        out = run_overlapped(soc, batches("100-5%", 3, 1))
        assert out.sequential_cycles == out.overlapped_cycles

    def test_empty(self):
        soc = Soc(WfasicConfig.paper_default(backtrace=True))
        out = run_overlapped(soc, [])
        assert out.speedup == 1.0
        assert out.sequential_cycles == 0
