"""Unit tests for the register file, AXI buses and interrupt line."""

import pytest

from repro.soc import (
    AxiFull,
    AxiLite,
    InterruptLine,
    MainMemory,
    MmioError,
    Reg,
    RegisterFile,
)


class TestRegisterFile:
    def test_idle_after_reset(self):
        regs = RegisterFile()
        assert regs.read(Reg.STATUS_IDLE) == 1

    def test_config_registers_writable(self):
        regs = RegisterFile()
        regs.write(Reg.MAX_READ_LEN, 10_000)
        regs.write(Reg.SRC_ADDR, 0x1000)
        assert regs.read(Reg.MAX_READ_LEN) == 10_000
        assert regs.read(Reg.SRC_ADDR) == 0x1000

    def test_read_only_registers(self):
        regs = RegisterFile()
        with pytest.raises(MmioError):
            regs.write(Reg.STATUS_IDLE, 0)
        with pytest.raises(MmioError):
            regs.write(Reg.DST_SIZE, 4)

    def test_unknown_offset(self):
        regs = RegisterFile()
        with pytest.raises(MmioError):
            regs.read(0x100)
        with pytest.raises(MmioError):
            regs.write(0x100, 1)

    def test_start_triggers_callback(self):
        regs = RegisterFile()
        fired = []
        regs.on_start(lambda: fired.append(True))
        regs.write(Reg.CTRL_START, 1)
        assert fired == [True]

    def test_start_without_accelerator(self):
        regs = RegisterFile()
        with pytest.raises(MmioError):
            regs.write(Reg.CTRL_START, 1)

    def test_value_range(self):
        regs = RegisterFile()
        with pytest.raises(MmioError):
            regs.write(Reg.SRC_ADDR, 2**32)

    def test_hw_set_bypasses_read_only(self):
        regs = RegisterFile()
        regs.hw_set(Reg.STATUS_IDLE, 0)
        assert regs.read(Reg.STATUS_IDLE) == 0


class TestAxiLite:
    def test_memory_path(self):
        mem = MainMemory(1024)
        bus = AxiLite(mem, RegisterFile())
        bus.write32(16, 0xDEADBEEF)
        assert bus.read32(16) == 0xDEADBEEF
        assert bus.reads == 1 and bus.writes == 1

    def test_mmio_path(self):
        bus = AxiLite(MainMemory(64), RegisterFile())
        bus.write32(AxiLite.MMIO_BASE + Reg.SRC_SIZE, 4096)
        assert bus.read32(AxiLite.MMIO_BASE + Reg.SRC_SIZE) == 4096


class TestAxiFull:
    def test_stream_roundtrip(self):
        mem = MainMemory(1024)
        bus = AxiFull(mem)
        bus.write_stream(0, b"x" * 33)
        assert bus.read_stream(0, 33) == b"x" * 33
        # 33 bytes = 3 beats each way.
        assert bus.beats_written == 3
        assert bus.beats_read == 3


class TestInterruptLine:
    def test_dispatch(self):
        irq = InterruptLine()
        hits = []
        irq.connect(lambda: hits.append(1))
        irq.connect(lambda: hits.append(2))
        irq.raise_()
        assert hits == [1, 2]
        assert irq.pending
        irq.clear()
        assert not irq.pending
        assert irq.raised_count == 1
