"""Unit tests for the main-memory model."""

import pytest

from repro.soc import MainMemory, MemoryError_


class TestAccess:
    def test_write_read_roundtrip(self):
        mem = MainMemory(1024)
        mem.write(100, b"hello")
        assert mem.read(100, 5) == b"hello"

    def test_zero_initialised(self):
        mem = MainMemory(64)
        assert mem.read(0, 64) == b"\x00" * 64

    def test_out_of_range_read(self):
        mem = MainMemory(64)
        with pytest.raises(MemoryError_):
            mem.read(60, 8)
        with pytest.raises(MemoryError_):
            mem.read(-1, 4)

    def test_out_of_range_write(self):
        mem = MainMemory(64)
        with pytest.raises(MemoryError_):
            mem.write(62, b"abcd")

    def test_counters(self):
        mem = MainMemory(1024)
        mem.write(0, b"abc")
        mem.read(0, 2)
        assert mem.bytes_written == 3
        assert mem.bytes_read == 2


class TestAllocator:
    def test_alignment(self):
        mem = MainMemory(1024)
        a = mem.allocate(5)
        b = mem.allocate(5)
        assert a % 16 == 0 and b % 16 == 0
        assert b >= a + 5

    def test_remaining(self):
        mem = MainMemory(1024)
        mem.allocate(100)
        assert mem.remaining <= 1024 - 100

    def test_exhaustion(self):
        mem = MainMemory(64)
        with pytest.raises(MemoryError_):
            mem.allocate(100)

    def test_reset(self):
        mem = MainMemory(64)
        mem.allocate(48)
        mem.reset_allocator()
        assert mem.allocate(48) == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MainMemory(0)
        with pytest.raises(ValueError):
            MainMemory(64).allocate(-1)
