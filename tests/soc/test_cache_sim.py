"""Tests for the set-associative cache simulator and the WFA trace."""

import numpy as np
import pytest

from repro.soc import CacheModel
from repro.soc.cache_sim import CacheSim, Hierarchy, wfa_trace


class TestCacheSim:
    def test_cold_miss_then_hit(self):
        c = CacheSim(1024, ways=2, line_bytes=64)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(32)  # same line
        assert c.stats.accesses == 3
        assert c.stats.misses == 1

    def test_lru_eviction(self):
        # 2-way set: three conflicting lines evict the oldest.
        c = CacheSim(2 * 64, ways=2, line_bytes=64)  # 1 set
        c.access(0)
        c.access(64)
        c.access(128)  # evicts line 0
        assert not c.access(0)

    def test_lru_keeps_recently_used(self):
        c = CacheSim(2 * 64, ways=2, line_bytes=64)
        c.access(0)
        c.access(64)
        c.access(0)  # refresh line 0
        c.access(128)  # must evict line 64, not 0
        assert c.access(0)
        assert not c.access(64)

    def test_working_set_behaviour(self):
        # A working set within capacity hits ~100% after warm-up.
        c = CacheSim(32 * 1024, ways=8, line_bytes=64)
        addrs = np.arange(0, 16 * 1024, 8)
        for a in addrs:
            c.access(int(a))
        before = c.stats.misses
        for a in addrs:
            assert c.access(int(a))
        assert c.stats.misses == before

    def test_thrash_when_oversized(self):
        c = CacheSim(4 * 1024, ways=4, line_bytes=64)
        addrs = np.arange(0, 64 * 1024, 64)
        for _ in range(2):
            for a in addrs:
                c.access(int(a))
        # Streaming 16x the capacity: second pass misses everywhere.
        assert c.stats.miss_rate > 0.9

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheSim(0)
        with pytest.raises(ValueError):
            CacheSim(1000, ways=3, line_bytes=64)


class TestHierarchy:
    def test_latency_ordering(self):
        h = Hierarchy()
        first = h.access(0)  # cold: DRAM
        second = h.access(0)  # L1 hit
        assert first == h.dram_cycles
        assert second == h.l1_hit_cycles

    def test_l2_catches_l1_evictions(self):
        h = Hierarchy(l1_bytes=4 * 1024, l2_bytes=512 * 1024)
        addrs = np.arange(0, 64 * 1024, 64)
        h.run_trace(addrs)  # cold pass
        h2_cycles = h.total_cycles
        h.run_trace(addrs)  # second pass: L1 too small, L2 holds it
        assert h.l2.stats.miss_rate < 0.6
        assert h.total_cycles - h2_cycles < len(addrs) * h.dram_cycles / 2

    def test_amat(self):
        h = Hierarchy()
        h.access(0)
        h.access(0)
        assert h.amat == (h.dram_cycles + h.l1_hit_cycles) / 2


class TestWfaTraceValidatesAnalyticModel:
    def test_score_only_stays_cached(self):
        """The windowed (score-only) WFA fits the hierarchy: AMAT small."""
        trace = wfa_trace(300, 200, backtrace=False)
        h = Hierarchy()
        h.run_trace(trace, coalesce=True)
        # The window stays L1-resident: only compulsory misses remain.
        assert h.l1.stats.miss_rate < 0.05

    def test_backtrace_mode_pays_allocation_misses(self):
        """Keeping all wavefronts means every vector write is a fresh
        allocation (compulsory misses) plus a cold backtrace walk; the
        windowed mode reuses resident lines.  This is the mechanism
        behind the §5.5 memory-boundedness of the CPU WFA."""
        bt = Hierarchy()
        bt.run_trace(wfa_trace(600, 256, backtrace=True), coalesce=True)
        so = Hierarchy()
        so.run_trace(wfa_trace(600, 256, backtrace=False), coalesce=True)
        assert bt.l1.stats.misses > 2 * so.l1.stats.misses
        assert bt.amat > so.amat

    def test_walk_misses_grow_with_history(self):
        """The final backtrace walk touches one cold line per step, so
        its miss count scales with the alignment's score history."""
        small = Hierarchy()
        small.run_trace(wfa_trace(100, 64, backtrace=True), coalesce=True)
        large = Hierarchy()
        large.run_trace(wfa_trace(1_000, 64, backtrace=True), coalesce=True)
        assert large.l2.stats.misses > 5 * small.l2.stats.misses

    def test_analytic_factor_direction_agrees(self):
        """The analytic CacheModel factor moves the same way as the
        simulated miss traffic."""
        analytic = CacheModel()
        f_small = analytic.memory_factor(100 * 64 * 4)
        f_large = analytic.memory_factor(1_000 * 640 * 4)
        assert f_large >= f_small
        bt = Hierarchy()
        bt.run_trace(wfa_trace(600, 256, backtrace=True), coalesce=True)
        so = Hierarchy()
        so.run_trace(wfa_trace(600, 256, backtrace=False), coalesce=True)
        # Backtrace mode (larger footprint) must also be the one the
        # simulator charges more memory cycles.
        assert bt.total_cycles > so.total_cycles

    def test_empty_trace(self):
        assert len(wfa_trace(0, 10, backtrace=True)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            wfa_trace(-1, 10, backtrace=False)
        with pytest.raises(ValueError):
            wfa_trace(10, 0, backtrace=False)
