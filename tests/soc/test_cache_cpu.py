"""Unit tests for the cache model and the Sargantana cost model."""

import pytest

from repro.align import WfaWorkCounters, wfa_align
from repro.soc import CacheModel, CpuTimings, SargantanaModel
from repro.wfasic.backtrace_cpu import CpuBacktraceWork


class TestCacheModel:
    def test_within_l2_no_stall(self):
        cache = CacheModel()
        assert cache.memory_factor(0) == 1.0
        assert cache.memory_factor(32 * 1024) == 1.0
        assert cache.memory_factor(512 * 1024) == 1.0

    def test_beyond_l2_monotone(self):
        cache = CacheModel()
        f1 = cache.memory_factor(1 * 1024 * 1024)
        f2 = cache.memory_factor(10 * 1024 * 1024)
        f3 = cache.memory_factor(100 * 1024 * 1024)
        assert 1.0 < f1 < f2 < f3 <= cache.max_factor

    def test_saturation(self):
        cache = CacheModel()
        assert cache.memory_factor(10**15) == cache.max_factor

    def test_fit_predicates(self):
        cache = CacheModel()
        assert cache.fits_l1(32 * 1024)
        assert not cache.fits_l1(33 * 1024)
        assert cache.fits_l2(512 * 1024)
        assert not cache.fits_l2(513 * 1024)

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheModel(l1_bytes=0)
        with pytest.raises(ValueError):
            CacheModel(l1_bytes=64 * 1024, l2_bytes=32 * 1024)
        with pytest.raises(ValueError):
            CacheModel().memory_factor(-1)


class TestWfaCycles:
    def _work(self, cells=1000, cmp=500, steps=20, alloc=1000, width=50):
        return WfaWorkCounters(
            score_iterations=steps,
            wavefront_steps=steps,
            cells_computed=cells,
            extend_comparisons=cmp,
            extend_matches=cmp - steps,
            peak_wavefront_width=width,
            cells_allocated=alloc,
        )

    def test_scalar_composition(self):
        model = SargantanaModel()
        t = model.timings
        work = self._work()
        cycles = model.wfa_cycles(work, vector=False, backtrace=False)
        expected = int(
            t.cell_cycles * 1000 + t.compare_cycles * 500 + t.step_cycles * 20
            + t.pair_fixed_cycles
        )
        assert cycles == expected

    def test_vector_faster_than_scalar(self):
        model = SargantanaModel()
        work = self._work(cells=100_000, cmp=50_000)
        scalar = model.wfa_cycles(work, vector=False)
        vec = model.wfa_cycles(work, vector=True)
        assert 2 < scalar / vec < 10

    def test_backtrace_adds_cost(self):
        model = SargantanaModel()
        work = self._work()
        assert model.wfa_cycles(work, backtrace=True) > model.wfa_cycles(
            work, backtrace=False
        )

    def test_memory_factor_kicks_in_for_large_runs(self):
        model = SargantanaModel()
        small = self._work()
        huge = self._work(cells=10_000_000, alloc=50_000_000, width=5000)
        # Per-cell cost ratio exceeds the raw work ratio due to the
        # memory factor on the larger footprint.
        c_small = model.wfa_cycles(small)
        c_huge = model.wfa_cycles(huge)
        assert c_huge / c_small > (10_000_000 / 1000)

    def test_real_alignment_flow(self):
        result = wfa_align("ACGTACGTAA", "ACGTTCGTAA")
        cycles = SargantanaModel().wfa_cycles(
            result.work, cigar_length=len(result.cigar)
        )
        assert cycles > 0


class TestBacktraceCycles:
    def test_no_separation(self):
        model = SargantanaModel()
        t = model.timings
        work = CpuBacktraceWork(
            transactions_scanned=100, walk_ops=10, match_chars=90
        )
        cycles = model.backtrace_cycles(work, num_alignments=2)
        expected = int(
            t.scan_txn_cycles * 100
            + t.walk_op_cycles * 10
            + t.match_char_cycles * 90
            + t.bt_pair_fixed_cycles * 2
        )
        assert cycles == expected

    def test_separation_dominates(self):
        model = SargantanaModel()
        base = CpuBacktraceWork(transactions_scanned=1000)
        sep = CpuBacktraceWork(transactions_scanned=1000, separation_bytes=10_000)
        assert model.backtrace_cycles(sep, num_alignments=1) > 5 * model.backtrace_cycles(
            base, num_alignments=1
        )

    def test_dram_thrash_penalty(self):
        model = SargantanaModel()
        t = model.timings
        # Per-alignment stream below the L2: the cached separation rate.
        small = CpuBacktraceWork(
            transactions_scanned=1000, separation_bytes=10_000
        )
        c_small = model.backtrace_cycles(small, num_alignments=1)
        assert c_small == int(
            t.scan_txn_cycles * 1000
            + t.separate_txn_cycles * 1000
            + t.separate_pair_fixed_cycles
            + t.bt_pair_fixed_cycles
        )
        # One alignment's stream beyond the L2: the DRAM rate applies.
        big = CpuBacktraceWork(
            transactions_scanned=1_000_000, separation_bytes=10_000_000
        )
        c_big = model.backtrace_cycles(big, num_alignments=1)
        assert c_big == int(
            t.scan_txn_cycles * 1_000_000
            + t.separate_txn_cycles_dram * 1_000_000
            + t.separate_pair_fixed_cycles
            + t.bt_pair_fixed_cycles
        )

    def test_separation_cliff_is_per_alignment(self):
        model = SargantanaModel()
        # The same big stream split over many alignments stays cached.
        work = CpuBacktraceWork(
            transactions_scanned=1_000_000, separation_bytes=10_000_000
        )
        few = model.backtrace_cycles(work, num_alignments=1)
        many = model.backtrace_cycles(work, num_alignments=1000)
        assert many < few

    def test_custom_timings(self):
        t = CpuTimings(scan_txn_cycles=1.0, bt_pair_fixed_cycles=0.0)
        model = SargantanaModel(timings=t)
        work = CpuBacktraceWork(transactions_scanned=7)
        assert model.backtrace_cycles(work, num_alignments=5) == 7


class TestInputPrepare:
    def test_proportional(self):
        model = SargantanaModel()
        assert model.input_prepare_cycles(1000) == 2000
