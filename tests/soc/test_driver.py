"""Tests for the register-level driver flow (Fig. 4 / §3)."""

import pytest

from repro.align import swg_align
from repro.soc import DriverError, MainMemory, Reg, WfasicDevice, WfasicDriver
from repro.wfasic import WfasicConfig
from repro.wfasic.packets import (
    encode_input_image,
    round_up_read_len,
    unpack_nbt_record,
)
from repro.workloads import make_input_set


def setup_soc(backtrace=False):
    mem = MainMemory(8 * 1024 * 1024)
    dev = WfasicDevice(WfasicConfig.paper_default(backtrace=backtrace), mem)
    drv = WfasicDriver(dev, mem)
    return mem, dev, drv


def batch(name="100-5%", n=4):
    pairs = make_input_set(name, n)
    mrl = round_up_read_len(max(p.max_length for p in pairs))
    return pairs, encode_input_image(pairs, mrl), mrl


class TestFullFlow:
    def test_polling_flow_produces_correct_scores(self):
        pairs, image, mrl = batch()
        _, dev, drv = setup_soc()
        stream = drv.run(image, mrl, backtrace=False)
        for i, pair in enumerate(pairs):
            rec = unpack_nbt_record(stream[i * 4 : (i + 1) * 4])
            assert rec.success
            assert rec.score == swg_align(pair.pattern, pair.text).score
        assert drv.poll_count >= 1

    def test_idle_toggles(self):
        pairs, image, mrl = batch(n=2)
        _, dev, drv = setup_soc()
        drv.configure(image, mrl, backtrace=False, result_capacity=4096)
        assert drv._reg_read(Reg.STATUS_IDLE) == 1
        drv.start()
        drv.wait()
        assert drv._reg_read(Reg.STATUS_IDLE) == 1
        assert dev.last_batch is not None

    def test_interrupt_mode(self):
        pairs, image, mrl = batch(n=2)
        _, dev, drv = setup_soc()
        fired = []
        dev.irq.connect(lambda: fired.append(True))
        drv.configure(image, mrl, backtrace=False, result_capacity=4096, irq=True)
        drv.start()
        assert fired == [True]
        assert dev.irq.pending

    def test_no_interrupt_when_disabled(self):
        pairs, image, mrl = batch(n=2)
        _, dev, drv = setup_soc()
        drv.configure(image, mrl, backtrace=False, result_capacity=4096, irq=False)
        drv.start()
        assert dev.irq.raised_count == 0

    def test_bt_register_controls_output_format(self):
        pairs, image, mrl = batch(n=2)
        _, dev, drv = setup_soc(backtrace=False)
        stream_nbt = drv.run(image, mrl, backtrace=False)
        mem2, dev2, drv2 = setup_soc(backtrace=True)
        stream_bt = drv2.run(image, mrl, backtrace=True)
        assert len(stream_bt) > len(stream_nbt)

    def test_dst_size_register(self):
        pairs, image, mrl = batch(n=5)
        _, dev, drv = setup_soc()
        drv.run(image, mrl, backtrace=False)
        # 5 NBT records -> 2 transactions -> 32 bytes.
        assert drv._reg_read(Reg.DST_SIZE) == 32


class TestDriverErrors:
    def test_start_before_configure(self):
        _, _, drv = setup_soc()
        with pytest.raises(DriverError):
            drv.start()

    def test_result_before_configure(self):
        _, _, drv = setup_soc()
        with pytest.raises(DriverError):
            drv.result_stream()

    def test_bad_max_read_len(self):
        _, _, drv = setup_soc()
        with pytest.raises(DriverError):
            drv.configure(b"", 100, backtrace=False, result_capacity=64)
