"""Tests for error profiling and the Eq. 5 preflight."""

import pytest

from repro.align import Cigar, swg_align
from repro.wfasic import WfasicConfig
from repro.workloads import PairGenerator
from repro.workloads.profile import (
    ErrorProfile,
    estimate_profile,
    preflight,
    profile_cigar,
)


class TestProfileCigar:
    def test_triple_extraction(self):
        c = Cigar.from_compact("5M1X3M2I4M1D2M")
        p = profile_cigar(c)
        assert p.num_mismatches == 1
        assert p.num_gap_opens == 2
        assert p.num_gap_characters == 3

    def test_score_matches_cigar_score(self):
        cfg = WfasicConfig.paper_default()
        gen = PairGenerator(length=300, error_rate=0.1, seed=1)
        pair = gen.pair()
        result = swg_align(pair.pattern, pair.text)
        assert profile_cigar(result.cigar).score(cfg) == result.score

    def test_perfect_alignment(self):
        p = profile_cigar(Cigar("M" * 20))
        assert p.score(WfasicConfig.paper_default()) == 0


class TestEstimateProfile:
    def test_expectation_magnitude(self):
        p = estimate_profile(10_000, 0.10)
        # ~1000 error chars: ~333 mismatches, ~667 gap characters.
        assert 300 < p.num_mismatches < 370
        assert 600 < p.num_gap_characters < 700

    @pytest.mark.slow
    def test_expected_score_tracks_measurements(self):
        cfg = WfasicConfig.paper_default()
        gen = PairGenerator(length=2_000, error_rate=0.08, seed=2)
        measured = []
        for _ in range(5):
            pair = gen.pair()
            measured.append(swg_align(pair.pattern, pair.text).score)
        expected = estimate_profile(2_000, 0.08).score(cfg)
        mean = sum(measured) / len(measured)
        assert 0.7 < expected / mean < 1.4

    def test_indel_runs_reduce_opens(self):
        single = estimate_profile(1_000, 0.1, mean_indel_run=1.0)
        runs = estimate_profile(1_000, 0.1, mean_indel_run=3.0)
        assert runs.num_gap_opens < single.num_gap_opens
        assert runs.num_gap_characters == single.num_gap_characters

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_profile(-1, 0.1)
        with pytest.raises(ValueError):
            estimate_profile(10, 1.5)
        with pytest.raises(ValueError):
            estimate_profile(10, 0.1, mean_indel_run=0.5)


class TestPreflight:
    def test_paper_workloads_supported(self):
        cfg = WfasicConfig.paper_default()
        # The shipped chip supports the paper input sets comfortably...
        for length, rate in ((100, 0.05), (100, 0.10), (1_000, 0.10),
                             (10_000, 0.05)):
            assert preflight(cfg, length, rate)
        # ...while the heaviest one (10K-10%, expected score ~6700 of the
        # 8000 budget) is genuinely tight: supported, but with only ~20%
        # expectation headroom — exactly the paper's "up to 10%" edge.
        assert preflight(cfg, 10_000, 0.10, margin=1.1)
        assert not preflight(cfg, 10_000, 0.10, margin=2.0)

    def test_overlong_reads_rejected(self):
        cfg = WfasicConfig.paper_default()
        assert not preflight(cfg, 20_000, 0.01)

    def test_score_budget_rejected(self):
        # A tiny k_max cannot host 10% errors on 10 kbp reads.
        cfg = WfasicConfig(k_max=100)
        assert not preflight(cfg, 10_000, 0.10)

    def test_margin_monotone(self):
        cfg = WfasicConfig(k_max=1700)
        # ~10K-10% expects score ~3867: fits 3404? no... pick a length
        # where margin decides: expected*1 <= max < expected*4.
        assert preflight(cfg, 5_000, 0.10, margin=1.0)
        assert not preflight(cfg, 5_000, 0.10, margin=4.0)

    def test_margin_validated(self):
        with pytest.raises(ValueError):
            preflight(WfasicConfig.paper_default(), 100, 0.05, margin=0.5)
