"""Tests for input-set statistics."""

import pytest

from repro.workloads import PairGenerator, make_input_set
from repro.workloads.stats import summarise_pairs


class TestSummarisePairs:
    def test_nominal_parameters_recovered(self):
        stats = summarise_pairs(make_input_set("100-10%", 10))
        assert 90 <= stats.mean_pattern_length <= 100
        # Realised error rate tracks the nominal 10% loosely (optimal
        # alignments can explain errors with fewer operations).
        assert 0.05 <= stats.mean_error_rate <= 0.13

    def test_zero_error_set(self):
        pairs = PairGenerator(length=100, error_rate=0.0, seed=1).batch(4)
        stats = summarise_pairs(pairs)
        assert stats.mean_score == 0
        assert stats.mean_error_rate == 0
        assert stats.mean_profile.num_mismatches == 0

    def test_higher_rate_higher_score(self):
        low = summarise_pairs(make_input_set("100-5%", 8))
        high = summarise_pairs(make_input_set("100-10%", 8))
        assert high.mean_score > low.mean_score
        assert high.mean_error_rate > low.mean_error_rate

    def test_describe_format(self):
        stats = summarise_pairs(make_input_set("100-5%", 3))
        text = stats.describe()
        assert "3 pairs" in text
        assert "score" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarise_pairs([])
