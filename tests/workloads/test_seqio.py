"""Unit tests for .seq file I/O."""

import pytest

from repro.workloads import (
    PairGenerator,
    SequencePair,
    iter_seq_lines,
    read_seq_file,
    write_seq_file,
)


class TestIterSeqLines:
    def test_basic(self):
        pairs = list(iter_seq_lines([">ACGT", "<ACGG"]))
        assert pairs == [("ACGT", "ACGG")]

    def test_multiple_and_blank_lines(self):
        lines = [">AA", "<AT", "", ">CC", "<CG", "   "]
        assert list(iter_seq_lines(lines)) == [("AA", "AT"), ("CC", "CG")]

    def test_text_before_pattern_rejected(self):
        with pytest.raises(ValueError):
            list(iter_seq_lines(["<ACGT"]))

    def test_double_pattern_rejected(self):
        with pytest.raises(ValueError):
            list(iter_seq_lines([">AA", ">CC"]))

    def test_trailing_pattern_rejected(self):
        with pytest.raises(ValueError):
            list(iter_seq_lines([">AA"]))

    def test_garbage_line_rejected(self):
        with pytest.raises(ValueError):
            list(iter_seq_lines(["ACGT"]))


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        pairs = PairGenerator(length=80, error_rate=0.1, seed=1).batch(6)
        path = tmp_path / "inputs.seq"
        assert write_seq_file(path, pairs) == 6
        back = read_seq_file(path)
        assert [(p.pattern, p.text) for p in back] == [
            (p.pattern, p.text) for p in pairs
        ]
        assert [p.pair_id for p in back] == list(range(6))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.seq"
        write_seq_file(path, [])
        assert read_seq_file(path) == []

    def test_empty_sequences(self, tmp_path):
        # Legal but degenerate: zero-length reads survive the round trip.
        path = tmp_path / "zero.seq"
        write_seq_file(path, [SequencePair(pattern="", text="")])
        back = read_seq_file(path)
        assert back[0].pattern == "" and back[0].text == ""


# -- streaming FASTA/FASTQ ingestion ----------------------------------------

from repro.workloads import (  # noqa: E402 — streaming additions under test
    SEQUENCE_FORMATS,
    iter_fasta_records,
    iter_fastq_records,
    iter_pair_chunks,
    read_pairs_file,
    sniff_format,
    stream_pairs,
)


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="ascii")
    return path


class TestSniffFormat:
    def test_seq_detected(self, tmp_path):
        assert sniff_format(_write(tmp_path, "a.txt", ">ACGT\n<ACGG\n")) == "seq"

    def test_fasta_detected(self, tmp_path):
        path = _write(tmp_path, "a.txt", ">read1\nACGT\n>read2\nACGG\n")
        assert sniff_format(path) == "fasta"

    def test_fastq_detected(self, tmp_path):
        path = _write(tmp_path, "a.txt", "@read1\nACGT\n+\nIIII\n")
        assert sniff_format(path) == "fastq"

    def test_empty_file_reads_as_seq(self, tmp_path):
        path = _write(tmp_path, "a.txt", "\n\n")
        assert sniff_format(path) == "seq"
        assert read_pairs_file(path) == []

    def test_unknown_first_line_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cannot detect"):
            sniff_format(_write(tmp_path, "a.txt", "ACGT\n"))

    def test_formats_constant(self):
        assert set(SEQUENCE_FORMATS) == {"seq", "fasta", "fastq"}


class TestFastaRecords:
    def test_multiline_sequences_concatenate(self):
        lines = [">r1", "ACGT", "ACGT", ">r2", "GG"]
        assert list(iter_fasta_records(lines)) == [
            ("r1", "ACGTACGT"),
            ("r2", "GG"),
        ]

    def test_blank_lines_ignored(self):
        lines = [">r1", "", "AC", "", ">r2", "GT"]
        assert list(iter_fasta_records(lines)) == [("r1", "AC"), ("r2", "GT")]

    def test_sequence_before_header_rejected(self):
        with pytest.raises(ValueError, match="before the first"):
            list(iter_fasta_records(["ACGT", ">r1", "AC"]))


class TestFastqRecords:
    def test_basic(self):
        lines = ["@r1", "ACGT", "+", "IIII", "@r2", "GG", "+r2", "II"]
        assert list(iter_fastq_records(lines)) == [("r1", "ACGT"), ("r2", "GG")]

    def test_truncated_record_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            list(iter_fastq_records(["@r1", "ACGT", "+"]))

    def test_bad_separator_rejected(self):
        with pytest.raises(ValueError, match="separator"):
            list(iter_fastq_records(["@r1", "ACGT", "-", "IIII"]))

    def test_quality_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="quality length"):
            list(iter_fastq_records(["@r1", "ACGT", "+", "II"]))

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="must start with '@'"):
            list(iter_fastq_records([">r1", "ACGT", "+", "IIII"]))


class TestStreamPairs:
    def _pairs(self):
        gen = PairGenerator(length=40, error_rate=0.1, seed=9)
        return gen.batch(4)

    def test_seq_roundtrip(self, tmp_path):
        pairs = self._pairs()
        path = tmp_path / "in.seq"
        write_seq_file(path, pairs)
        streamed = list(stream_pairs(path))
        assert [(p.pattern, p.text) for p in streamed] == [
            (p.pattern, p.text) for p in pairs
        ]
        assert [p.pair_id for p in streamed] == [0, 1, 2, 3]

    def test_fasta_consecutive_records_pair_up(self, tmp_path):
        pairs = self._pairs()
        body = "".join(
            f">p{p.pair_id}/pat\n{p.pattern}\n>p{p.pair_id}/txt\n{p.text}\n"
            for p in pairs
        )
        streamed = list(stream_pairs(_write(tmp_path, "in.fasta", body)))
        assert [(p.pattern, p.text) for p in streamed] == [
            (p.pattern, p.text) for p in pairs
        ]

    def test_fastq_consecutive_records_pair_up(self, tmp_path):
        pairs = self._pairs()
        body = "".join(
            f"@p{p.pair_id}/pat\n{p.pattern}\n+\n{'I' * len(p.pattern)}\n"
            f"@p{p.pair_id}/txt\n{p.text}\n+\n{'I' * len(p.text)}\n"
            for p in pairs
        )
        streamed = list(stream_pairs(_write(tmp_path, "in.fastq", body)))
        assert [(p.pattern, p.text) for p in streamed] == [
            (p.pattern, p.text) for p in pairs
        ]

    def test_odd_record_count_rejected(self, tmp_path):
        path = _write(tmp_path, "odd.fasta", ">r1\nACGT\n>r2\nAC\n>r3\nGT\n")
        with pytest.raises(ValueError, match="odd number of records"):
            list(stream_pairs(path))

    def test_explicit_format_overrides_sniffing(self, tmp_path):
        # A FASTA whose first record line could sniff as .seq cannot
        # exist (.seq needs '<'), but an explicit format must be honoured.
        path = _write(tmp_path, "in.txt", ">r1\nACGT\n>r2\nAC\n")
        assert len(list(stream_pairs(path, format="fasta"))) == 1

    def test_unknown_format_rejected(self, tmp_path):
        path = _write(tmp_path, "in.txt", ">A\n<A\n")
        with pytest.raises(ValueError, match="unknown sequence format"):
            list(stream_pairs(path, format="bam"))

    def test_lazy_iteration(self, tmp_path):
        """The stream yields before the file is fully parsed."""
        body = ">r1\nAC\n>r2\nGT\n" * 100 + ">odd\nAC\n"
        path = _write(tmp_path, "in.fasta", body)
        it = stream_pairs(path)
        first = next(it)
        assert (first.pattern, first.text) == ("AC", "GT")
        # The trailing odd record only errors once reached.
        with pytest.raises(ValueError, match="odd number"):
            list(it)


class TestIterPairChunks:
    def test_chunks_are_bounded(self):
        pairs = PairGenerator(length=10, error_rate=0.0, seed=1).batch(7)
        chunks = list(iter_pair_chunks(iter(pairs), 3))
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert [p.pair_id for c in chunks for p in c] == list(range(7))

    def test_exact_multiple(self):
        pairs = PairGenerator(length=5, error_rate=0.0, seed=1).batch(4)
        assert [len(c) for c in iter_pair_chunks(iter(pairs), 2)] == [2, 2]

    def test_empty_stream(self):
        assert list(iter_pair_chunks(iter(()), 4)) == []

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            list(iter_pair_chunks(iter(()), 0))


def _write_bytes(tmp_path, name, payload):
    path = tmp_path / name
    path.write_bytes(payload)
    return path


class TestNonAsciiBytes:
    """Non-ASCII input surfaces as the contractual ``ValueError``.

    The readers promise "malformed input raises ``ValueError``"; before
    ISSUE 8 a file with non-ASCII bytes (a UTF-8 header from an
    external tool, a stray 0xFF) leaked a raw ``UnicodeDecodeError``
    through ``sniff_format``/``read_seq_file``/``stream_pairs``
    instead, which the CLI's error handling does not catch.
    """

    #: A FASTA whose header carries a UTF-8 micro sign (0xC2 0xB5).
    UTF8_FASTA = b">read-\xc2\xb5\nACGT\n>r2\nACGG\n"

    def test_sniff_format_raises_value_error(self, tmp_path):
        path = _write_bytes(tmp_path, "in.fa", b"\xff>r1\nACGT\n")
        with pytest.raises(ValueError, match="non-ASCII byte 0xff"):
            sniff_format(path)

    def test_read_seq_file_names_file_and_position(self, tmp_path):
        path = _write_bytes(tmp_path, "in.seq", b">ACGT\n<AC\xf1GT\n")
        with pytest.raises(ValueError) as excinfo:
            read_seq_file(path)
        message = str(excinfo.value)
        assert "in.seq" in message
        assert "0xf1" in message
        # "near line N" is approximate: the text decoder reads buffered
        # chunks ahead of the line iterator, so the error can surface a
        # line or two before the byte's true position.
        assert "near line" in message

    def test_stream_pairs_fasta_header_raises_value_error(self, tmp_path):
        path = _write_bytes(tmp_path, "in.fasta", self.UTF8_FASTA)
        with pytest.raises(ValueError, match="non-ASCII byte 0xc2"):
            list(stream_pairs(path))

    def test_stream_pairs_fastq_raises_value_error(self, tmp_path):
        path = _write_bytes(
            tmp_path, "in.fastq", b"@r1\nACGT\n+\nII\x80I\n"
        )
        with pytest.raises(ValueError, match="non-ASCII"):
            list(stream_pairs(path, format="fastq"))

    def test_chained_cause_is_preserved(self, tmp_path):
        # The original decode error stays on the chain for debugging.
        path = _write_bytes(tmp_path, "in.fa", self.UTF8_FASTA)
        with pytest.raises(ValueError) as excinfo:
            sniff_format(path)
        assert isinstance(excinfo.value.__cause__, UnicodeDecodeError)

    def test_ascii_files_unaffected(self, tmp_path):
        path = _write_bytes(tmp_path, "in.seq", b">ACGT\n<ACGG\n")
        pairs = read_seq_file(path)
        assert [(p.pattern, p.text) for p in pairs] == [("ACGT", "ACGG")]
