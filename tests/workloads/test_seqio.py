"""Unit tests for .seq file I/O."""

import pytest

from repro.workloads import (
    PairGenerator,
    SequencePair,
    iter_seq_lines,
    read_seq_file,
    write_seq_file,
)


class TestIterSeqLines:
    def test_basic(self):
        pairs = list(iter_seq_lines([">ACGT", "<ACGG"]))
        assert pairs == [("ACGT", "ACGG")]

    def test_multiple_and_blank_lines(self):
        lines = [">AA", "<AT", "", ">CC", "<CG", "   "]
        assert list(iter_seq_lines(lines)) == [("AA", "AT"), ("CC", "CG")]

    def test_text_before_pattern_rejected(self):
        with pytest.raises(ValueError):
            list(iter_seq_lines(["<ACGT"]))

    def test_double_pattern_rejected(self):
        with pytest.raises(ValueError):
            list(iter_seq_lines([">AA", ">CC"]))

    def test_trailing_pattern_rejected(self):
        with pytest.raises(ValueError):
            list(iter_seq_lines([">AA"]))

    def test_garbage_line_rejected(self):
        with pytest.raises(ValueError):
            list(iter_seq_lines(["ACGT"]))


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        pairs = PairGenerator(length=80, error_rate=0.1, seed=1).batch(6)
        path = tmp_path / "inputs.seq"
        assert write_seq_file(path, pairs) == 6
        back = read_seq_file(path)
        assert [(p.pattern, p.text) for p in back] == [
            (p.pattern, p.text) for p in pairs
        ]
        assert [p.pair_id for p in back] == list(range(6))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.seq"
        write_seq_file(path, [])
        assert read_seq_file(path) == []

    def test_empty_sequences(self, tmp_path):
        # Legal but degenerate: zero-length reads survive the round trip.
        path = tmp_path / "zero.seq"
        write_seq_file(path, [SequencePair(pattern="", text="")])
        back = read_seq_file(path)
        assert back[0].pattern == "" and back[0].text == ""
