"""Unit and property tests for the synthetic pair generator."""

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.align import swg_align
from repro.workloads import ErrorMix, PairGenerator, SequencePair


class TestSequencePair:
    def test_rejects_non_dna(self):
        with pytest.raises(ValueError):
            SequencePair(pattern="ACGZ", text="ACGT")

    def test_folds_lowercase(self):
        # Lowercase is case-folded on construction (the engine-boundary
        # policy), so FASTA-style lowercase input is served, not rejected.
        pair = SequencePair(pattern="acgt", text="AcGtN")
        assert pair.pattern == "ACGT"
        assert pair.text == "ACGTN"

    def test_allows_n(self):
        # 'N' bases are legal in inputs (the Extractor rejects them later).
        SequencePair(pattern="ACGN", text="ACGT")

    def test_max_length(self):
        assert SequencePair(pattern="ACG", text="ACGTA").max_length == 5


class TestErrorMix:
    def test_probabilities_normalise(self):
        assert ErrorMix(1, 1, 2).probabilities() == (0.25, 0.25, 0.5)

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            ErrorMix(0, 0, 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ErrorMix(-1, 1, 1)


class TestPairGenerator:
    def test_deterministic(self):
        p1 = PairGenerator(length=200, error_rate=0.1, seed=5).batch(5)
        p2 = PairGenerator(length=200, error_rate=0.1, seed=5).batch(5)
        assert [(p.pattern, p.text) for p in p1] == [(p.pattern, p.text) for p in p2]

    def test_different_seeds_differ(self):
        a = PairGenerator(length=200, error_rate=0.1, seed=1).pair()
        b = PairGenerator(length=200, error_rate=0.1, seed=2).pair()
        assert a.pattern != b.pattern

    def test_pair_ids_increment(self):
        gen = PairGenerator(length=50, error_rate=0.1, seed=0)
        assert [p.pair_id for p in gen.batch(4)] == [0, 1, 2, 3]

    def test_zero_error_rate_identical(self):
        gen = PairGenerator(length=300, error_rate=0.0, seed=3)
        pair = gen.pair()
        assert pair.pattern == pair.text
        assert pair.errors_injected == 0

    def test_pattern_length_nominal(self):
        gen = PairGenerator(length=123, error_rate=0.1, seed=4)
        assert len(gen.pair().pattern) == 123

    def test_error_rate_statistics(self):
        # With 20k bases at 10%, injected errors are ~N(2000, sqrt).
        gen = PairGenerator(length=20_000, error_rate=0.10, seed=6)
        pair = gen.pair()
        assert 1700 <= pair.errors_injected <= 2300

    def test_error_rate_reflected_in_alignment_score(self):
        # The SWG optimum per base must track the nominal error rate.
        gen5 = PairGenerator(length=800, error_rate=0.05, seed=7)
        gen10 = PairGenerator(length=800, error_rate=0.10, seed=7)
        s5 = swg_align(*_pt(gen5.pair())).score
        s10 = swg_align(*_pt(gen10.pair())).score
        assert 0 < s5 < s10

    def test_mismatch_only_mix_keeps_length(self):
        gen = PairGenerator(
            length=500, error_rate=0.2, mix=ErrorMix(1, 0, 0), seed=8
        )
        pair = gen.pair()
        assert len(pair.text) == len(pair.pattern)

    def test_insertion_only_mix_grows(self):
        gen = PairGenerator(
            length=500, error_rate=0.2, mix=ErrorMix(0, 1, 0), seed=9
        )
        pair = gen.pair()
        assert len(pair.text) == 500 + pair.errors_injected

    def test_deletion_only_mix_shrinks(self):
        gen = PairGenerator(
            length=500, error_rate=0.2, mix=ErrorMix(0, 0, 1), seed=10
        )
        pair = gen.pair()
        assert len(pair.text) == 500 - pair.errors_injected

    def test_base_composition_roughly_uniform(self):
        gen = PairGenerator(length=40_000, error_rate=0.0, seed=11)
        pat = gen.pair().pattern
        counts = np.array([pat.count(c) for c in "ACGT"])
        assert (np.abs(counts - 10_000) < 600).all()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PairGenerator(length=-1, error_rate=0.1)
        with pytest.raises(ValueError):
            PairGenerator(length=10, error_rate=1.5)
        with pytest.raises(ValueError):
            PairGenerator(length=10, error_rate=0.1).batch(-1)

    def test_zero_length(self):
        pair = PairGenerator(length=0, error_rate=0.5, seed=0).pair()
        assert pair.pattern == "" and pair.text == ""


@given(
    length=st.integers(min_value=0, max_value=300),
    rate=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=60, deadline=None)
def test_property_alignment_score_bounded_by_errors(length, rate, seed):
    """Each injected error costs at most max(x, o+e) + slack: the SWG score
    of a generated pair can never exceed worst-case per-error cost."""
    gen = PairGenerator(length=length, error_rate=rate, seed=seed)
    pair = gen.pair()
    score = swg_align(pair.pattern, pair.text).score
    # Worst case: every error is an isolated gap (o + e each).
    assert score <= pair.errors_injected * 8


def _pt(pair: SequencePair) -> tuple[str, str]:
    return pair.pattern, pair.text


class TestLongReadPreset:
    def test_preset_parameters(self):
        gen = PairGenerator.long_read(length=12_000, seed=3)
        assert gen.length == 12_000
        assert gen.error_rate == pytest.approx(0.02)
        assert gen.max_indel_run == 6
        # ONT-like mix: indel-heavy, deletions heaviest.
        assert gen.mix.deletion > gen.mix.insertion > gen.mix.mismatch

    def test_length_bounds_enforced(self):
        with pytest.raises(ValueError, match="long_read length"):
            PairGenerator.long_read(length=9_999)
        with pytest.raises(ValueError, match="long_read length"):
            PairGenerator.long_read(length=100_001)
        for edge in (
            PairGenerator.LONG_READ_MIN_LENGTH,
            PairGenerator.LONG_READ_MAX_LENGTH,
        ):
            assert PairGenerator.long_read(length=edge).length == edge

    def test_deterministic_per_seed(self):
        a = PairGenerator.long_read(seed=7).batch(2)
        b = PairGenerator.long_read(seed=7).batch(2)
        assert [_pt(p) for p in a] == [_pt(p) for p in b]
        c = PairGenerator.long_read(seed=8).batch(2)
        assert [_pt(p) for p in a] != [_pt(p) for p in c]

    def test_reads_are_long_and_indel_heavy(self):
        pair = PairGenerator.long_read(length=10_000, seed=1).pair()
        assert len(pair.pattern) == 10_000
        # An indel-heavy 2% profile must actually change the text length
        # (a mismatch-only profile never would).
        assert len(pair.text) != len(pair.pattern)
        assert pair.errors_injected > 0
