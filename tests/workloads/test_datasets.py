"""Unit tests for the named paper input sets."""

import pytest

from repro.workloads import (
    PAPER_INPUT_SETS,
    input_set_names,
    make_input_set,
)


class TestRegistry:
    def test_six_sets_in_paper_order(self):
        assert input_set_names() == [
            "100-5%",
            "100-10%",
            "1K-5%",
            "1K-10%",
            "10K-5%",
            "10K-10%",
        ]

    def test_spec_parameters(self):
        by_name = {s.name: s for s in PAPER_INPUT_SETS}
        assert by_name["100-5%"].length == 100
        assert by_name["100-5%"].error_rate == 0.05
        assert by_name["10K-10%"].length == 10_000
        assert by_name["10K-10%"].error_rate == 0.10

    def test_seeds_distinct(self):
        seeds = [s.seed for s in PAPER_INPUT_SETS]
        assert len(set(seeds)) == len(seeds)


class TestMakeInputSet:
    def test_reproducible(self):
        a = make_input_set("100-5%", 4)
        b = make_input_set("100-5%", 4)
        assert [(p.pattern, p.text) for p in a] == [(p.pattern, p.text) for p in b]

    def test_seed_offset_changes_data(self):
        a = make_input_set("100-5%", 2)
        b = make_input_set("100-5%", 2, seed_offset=1)
        assert a[0].pattern != b[0].pattern

    def test_lengths(self):
        pairs = make_input_set("1K-10%", 3)
        assert all(len(p.pattern) == 1000 for p in pairs)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_input_set("2K-5%", 1)

    def test_prefix_is_consistent(self):
        # The first pairs of a longer batch equal a shorter batch.
        short = make_input_set("100-10%", 2)
        longer = make_input_set("100-10%", 5)
        assert short[0].pattern == longer[0].pattern
        assert short[1].text == longer[1].text
