"""Tests for the synthetic genome / read-sampling substrate."""

import pytest

from repro.align import swg_align
from repro.workloads import ReadSampler, synthetic_genome, tiling_reads


class TestSyntheticGenome:
    def test_length_and_alphabet(self):
        g = synthetic_genome(5000, seed=1)
        assert len(g) == 5000
        assert set(g) <= set("ACGT")

    def test_deterministic(self):
        assert synthetic_genome(1000, seed=2) == synthetic_genome(1000, seed=2)
        assert synthetic_genome(1000, seed=2) != synthetic_genome(1000, seed=3)

    def test_repeats_create_duplicate_segments(self):
        g = synthetic_genome(20_000, seed=4, repeat_fraction=0.3)
        unit = g[: max(50, len(g) // 100)]
        # The unit is planted at least twice somewhere else.
        assert g.count(unit) >= 2

    def test_zero_length(self):
        assert synthetic_genome(0) == ""

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_genome(-1)
        with pytest.raises(ValueError):
            synthetic_genome(100, repeat_fraction=1.0)


class TestReadSampler:
    def test_reads_match_origin(self):
        g = synthetic_genome(10_000, seed=5)
        sampler = ReadSampler(g, read_length=300, error_rate=0.05, seed=6)
        for read in sampler.sample_many(5):
            origin = g[read.true_position : read.true_position + 300]
            score = swg_align(read.sequence, origin).score
            # ~15 errors at <=8 penalty each.
            assert score <= read.errors_injected * 8

    def test_zero_error_reads_exact(self):
        g = synthetic_genome(2_000, seed=7)
        sampler = ReadSampler(g, read_length=100, error_rate=0.0, seed=8)
        read = sampler.sample()
        assert read.sequence == g[read.true_position : read.true_position + 100]
        assert read.errors_injected == 0

    def test_read_ids_increment(self):
        g = synthetic_genome(1_000, seed=9)
        sampler = ReadSampler(g, read_length=50, error_rate=0.1, seed=10)
        assert [r.read_id for r in sampler.sample_many(3)] == [0, 1, 2]

    def test_positions_in_range(self):
        g = synthetic_genome(500, seed=11)
        sampler = ReadSampler(g, read_length=400, error_rate=0.1, seed=12)
        for read in sampler.sample_many(20):
            assert 0 <= read.true_position <= 100

    def test_validation(self):
        g = synthetic_genome(100, seed=13)
        with pytest.raises(ValueError):
            ReadSampler(g, read_length=0, error_rate=0.1)
        with pytest.raises(ValueError):
            ReadSampler(g, read_length=101, error_rate=0.1)
        with pytest.raises(ValueError):
            ReadSampler(g, read_length=50, error_rate=0.1).sample_many(-1)


class TestTilingReads:
    def test_known_overlap_structure(self):
        g = synthetic_genome(10_000, seed=14)
        reads = tiling_reads(g, read_length=2_000, stride=1_500, error_rate=0.0)
        assert len(reads) == (10_000 - 2_000) // 1_500 + 1
        # Adjacent reads overlap by read_length - stride exactly.
        r0, r1 = reads[0], reads[1]
        assert r0.sequence[1_500:] == r1.sequence[:500]

    def test_positions_are_strided(self):
        g = synthetic_genome(5_000, seed=15)
        reads = tiling_reads(g, read_length=1_000, stride=800, error_rate=0.05)
        assert [r.true_position for r in reads] == list(range(0, 4_001, 800))

    def test_stride_validated(self):
        g = synthetic_genome(1_000, seed=16)
        with pytest.raises(ValueError):
            tiling_reads(g, read_length=100, stride=0, error_rate=0.1)


class TestIndelRuns:
    def test_runs_respect_max(self):
        from repro.workloads import ErrorMix, PairGenerator

        gen = PairGenerator(
            length=2_000,
            error_rate=0.05,
            mix=ErrorMix(0, 1, 0),  # insertions only
            max_indel_run=4,
            seed=17,
        )
        pair = gen.pair()
        # Text grows by exactly the injected error characters.
        assert len(pair.text) == 2_000 + pair.errors_injected

    def test_deletion_runs_shrink_by_error_count(self):
        from repro.workloads import ErrorMix, PairGenerator

        gen = PairGenerator(
            length=2_000,
            error_rate=0.05,
            mix=ErrorMix(0, 0, 1),
            max_indel_run=4,
            seed=18,
        )
        pair = gen.pair()
        assert len(pair.text) == 2_000 - pair.errors_injected

    @pytest.mark.slow
    def test_runs_lower_score_per_error(self):
        """Clustered indels amortise the gap-open penalty."""
        from repro.align import swg_align
        from repro.workloads import PairGenerator

        single = PairGenerator(length=3_000, error_rate=0.08, seed=19)
        runs = PairGenerator(
            length=3_000, error_rate=0.08, max_indel_run=4, seed=19
        )
        p1, p2 = single.pair(), runs.pair()
        s1 = swg_align(p1.pattern, p1.text).score / max(p1.errors_injected, 1)
        s2 = swg_align(p2.pattern, p2.text).score / max(p2.errors_injected, 1)
        assert s2 < s1

    def test_validation(self):
        from repro.workloads import PairGenerator

        with pytest.raises(ValueError):
            PairGenerator(length=10, error_rate=0.1, max_indel_run=0)
