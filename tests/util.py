"""Shared helpers for the test suite: deterministic sequence generation
and the CIGAR-validity contract every aligner must satisfy."""

from __future__ import annotations

import random

from repro.align.cigar import Cigar
from repro.align.penalties import AffinePenalties, LinearPenalties

DNA = "ACGT"


def assert_valid_cigar(
    cigar: Cigar,
    a: str,
    b: str,
    penalties: AffinePenalties | LinearPenalties | None = None,
    expected_score: int | None = None,
) -> None:
    """The CIGAR contract shared by every alignment engine.

    * the CIGAR consumes exactly ``len(a)`` pattern and ``len(b)`` text
      characters, and every M/X column covers the right characters
      (:meth:`Cigar.validate`),
    * re-scoring the CIGAR under ``penalties`` reproduces
      ``expected_score`` (when both are given).
    """
    assert cigar is not None, "missing CIGAR"
    assert cigar.pattern_length == len(a), (
        f"CIGAR consumes {cigar.pattern_length} pattern chars, "
        f"sequence has {len(a)}"
    )
    assert cigar.text_length == len(b), (
        f"CIGAR consumes {cigar.text_length} text chars, "
        f"sequence has {len(b)}"
    )
    cigar.validate(a, b)
    if penalties is not None and expected_score is not None:
        rescored = cigar.score(penalties)
        assert rescored == expected_score, (
            f"CIGAR re-scores to {rescored}, aligner reported {expected_score}"
        )


def random_seq(rng: random.Random, length: int) -> str:
    """Uniform random DNA sequence of the given length."""
    return "".join(rng.choice(DNA) for _ in range(length))


def mutate(
    rng: random.Random,
    seq: str,
    rate: float,
    *,
    mix: tuple[float, float, float] = (1 / 3, 1 / 3, 1 / 3),
) -> str:
    """Apply uniform random errors at the given per-base rate.

    ``mix`` gives the relative weight of (mismatch, insertion, deletion);
    this mirrors the synthetic-input methodology of the paper (§5.3).
    """
    w_sub, w_ins, w_del = mix
    total = w_sub + w_ins + w_del
    out: list[str] = []
    for ch in seq:
        r = rng.random()
        if r < rate:
            kind = rng.random() * total
            if kind < w_sub:
                out.append(rng.choice([c for c in DNA if c != ch]))
            elif kind < w_sub + w_ins:
                out.append(rng.choice(DNA) + ch)
            # deletion: emit nothing
        else:
            out.append(ch)
    return "".join(out)


def random_pair(
    rng: random.Random, length: int, rate: float
) -> tuple[str, str]:
    """A pattern and an error-mutated copy of it."""
    a = random_seq(rng, length)
    return a, mutate(rng, a, rate)
