"""Shared helpers for the test suite: deterministic sequence generation."""

from __future__ import annotations

import random

DNA = "ACGT"


def random_seq(rng: random.Random, length: int) -> str:
    """Uniform random DNA sequence of the given length."""
    return "".join(rng.choice(DNA) for _ in range(length))


def mutate(
    rng: random.Random,
    seq: str,
    rate: float,
    *,
    mix: tuple[float, float, float] = (1 / 3, 1 / 3, 1 / 3),
) -> str:
    """Apply uniform random errors at the given per-base rate.

    ``mix`` gives the relative weight of (mismatch, insertion, deletion);
    this mirrors the synthetic-input methodology of the paper (§5.3).
    """
    w_sub, w_ins, w_del = mix
    total = w_sub + w_ins + w_del
    out: list[str] = []
    for ch in seq:
        r = rng.random()
        if r < rate:
            kind = rng.random() * total
            if kind < w_sub:
                out.append(rng.choice([c for c in DNA if c != ch]))
            elif kind < w_sub + w_ins:
                out.append(rng.choice(DNA) + ch)
            # deletion: emit nothing
        else:
            out.append(ch)
    return "".join(out)


def random_pair(
    rng: random.Random, length: int, rate: float
) -> tuple[str, str]:
    """A pattern and an error-mutated copy of it."""
    a = random_seq(rng, length)
    return a, mutate(rng, a, rate)
