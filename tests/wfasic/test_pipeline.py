"""Tests for the fluid pipeline timing model."""

import pytest

from repro.wfasic import schedule_makespan
from repro.wfasic.dma import DmaTimings
from repro.wfasic.pipeline import FluidPipelineSim, PipelineJob


def jobs(n, read=100, align=1000, out=0):
    return [PipelineJob(read, align, out) for _ in range(n)]


class TestReducesToAnalyticSchedule:
    @pytest.mark.parametrize("aligners", [1, 2, 4])
    def test_no_output_matches_schedule(self, aligners):
        batch = jobs(12, read=75, align=900)
        sim = FluidPipelineSim(aligners)
        result = sim.run(batch)
        expected = schedule_makespan(75, [900] * 12, aligners)
        assert result.makespan == pytest.approx(expected)
        assert result.throttle_cycles == pytest.approx(0.0, abs=1e-6)
        assert not result.output_limited

    def test_empty_batch(self):
        result = FluidPipelineSim(2).run([])
        assert result.makespan == 0.0

    def test_single_job(self):
        result = FluidPipelineSim(1).run([PipelineJob(50, 500)])
        assert result.makespan == pytest.approx(550)
        assert result.completion_times == [pytest.approx(550)]


class TestOutputContention:
    def test_light_output_no_throttle(self):
        # Demand far below the 4/11 txn/cycle port rate.
        batch = jobs(4, read=75, align=1000, out=10)
        result = FluidPipelineSim(1).run(batch)
        assert not result.output_limited

    def test_heavy_output_throttles(self):
        # Demand 0.5 txns/cycle > 4/11: the Aligner stalls on the port.
        batch = jobs(2, read=75, align=1000, out=500)
        result = FluidPipelineSim(1).run(batch)
        assert result.output_limited
        rate = DmaTimings().burst_beats / DmaTimings().cycles_per_burst
        # Each alignment stretches to out/rate cycles.
        stretched = 500 / rate
        assert result.makespan == pytest.approx(75 + stretched + 75 + stretched, rel=0.02)

    def test_multiple_aligners_share_port(self):
        # Each job demands 0.25 txn/cycle; two overlapped demand 0.5,
        # above the 4/11 port rate, so both throttle by 0.5/(4/11) = 1.375
        # and the two-aligner speedup collapses from 2x to ~1.45x.
        one = FluidPipelineSim(1).run(jobs(2, read=10, align=1000, out=250))
        two = FluidPipelineSim(2).run(jobs(2, read=10, align=1000, out=250))
        assert not one.output_limited  # 0.25 < 4/11 alone
        assert two.output_limited
        assert 1.3 < one.makespan / two.makespan < 1.6

    def test_contention_grows_with_aligner_count(self):
        heavy = jobs(8, read=10, align=1000, out=400)
        m1 = FluidPipelineSim(1).run(heavy).makespan
        m4 = FluidPipelineSim(4).run(heavy).makespan
        # Scaling is sub-linear under output contention: nowhere near 4x.
        assert m1 / m4 < 2.0

    def test_no_bt_scaling_unaffected(self):
        light = jobs(8, read=10, align=1000, out=0)
        m1 = FluidPipelineSim(1).run(light).makespan
        m4 = FluidPipelineSim(4).run(light).makespan
        assert m1 / m4 > 3.0


class TestValidation:
    def test_bad_job(self):
        with pytest.raises(ValueError):
            PipelineJob(-1, 10)

    def test_bad_aligner_count(self):
        with pytest.raises(ValueError):
            FluidPipelineSim(0)

    def test_zero_cycle_alignment(self):
        result = FluidPipelineSim(1).run([PipelineJob(10, 0, 0)])
        assert result.makespan == pytest.approx(10)
