"""Tests for the RAM-accurate Aligner (the GLS analog of §5.1).

Like the paper's gate-level simulations, these run "a less number of
inputs" than the fast-model campaigns, but verify the full banked-RAM
datapath: Fig. 6 addressing, frame-column rotation/tagging, the combined
edge-bank read, and 2-bit sequence fetches through the Input_Seq words.
"""

import random

import pytest

from repro.align import swg_align
from repro.wfasic import Aligner, WfasicConfig
from repro.wfasic.aligner_ram import RamAccurateAligner

from tests.util import random_pair
from tests.wfasic.test_aligner import job_for


class TestEquivalence:
    @pytest.mark.parametrize("n_ps,k_max", [(4, 32), (8, 64), (16, 64)])
    def test_matches_fast_model_and_oracle(self, n_ps, k_max):
        rng = random.Random(n_ps * 1000 + k_max)
        cfg = WfasicConfig(parallel_sections=n_ps, k_max=k_max, backtrace=False)
        ram = RamAccurateAligner(cfg)
        fast = Aligner(cfg)
        for _ in range(12):
            a, b = random_pair(rng, rng.randint(1, 48), 0.3)
            job = job_for(a, b)
            r_ram = ram.run(job)
            r_fast = fast.run(job)
            assert r_ram.success == r_fast.success
            if r_ram.success:
                assert r_ram.score == r_fast.score == swg_align(a, b).score

    def test_identical_pair(self):
        cfg = WfasicConfig(parallel_sections=8, k_max=32, backtrace=False)
        r = RamAccurateAligner(cfg).run(job_for("ACGT" * 8, "ACGT" * 8))
        assert r.success and r.score == 0

    def test_score_limit_failure(self):
        cfg = WfasicConfig(parallel_sections=8, k_max=8, backtrace=False)
        r = RamAccurateAligner(cfg).run(job_for("A" * 30, "T" * 30))
        assert not r.success

    def test_unsupported_job(self):
        cfg = WfasicConfig(parallel_sections=8, k_max=32, backtrace=False)
        r = RamAccurateAligner(cfg).run(job_for("ACGN", "ACGT", max_read_len=16))
        assert not r.success

    def test_kmax_diagonal_failure(self):
        cfg = WfasicConfig(parallel_sections=8, k_max=4, backtrace=False)
        r = RamAccurateAligner(cfg).run(job_for("AA", "A" * 30))
        assert not r.success

    def test_back_to_back_pairs_no_stale_state(self):
        # Reusing the same RAM objects across pairs must not leak data.
        rng = random.Random(9)
        cfg = WfasicConfig(parallel_sections=8, k_max=48, backtrace=False)
        ram = RamAccurateAligner(cfg)
        for _ in range(8):
            a, b = random_pair(rng, rng.randint(4, 40), 0.25)
            r = ram.run(job_for(a, b))
            assert r.success and r.score == swg_align(a, b).score


class TestConstraints:
    def test_backtrace_config_rejected(self):
        with pytest.raises(ValueError):
            RamAccurateAligner(WfasicConfig(parallel_sections=16, backtrace=True))

    def test_probe_hook_sees_steps(self):
        cfg = WfasicConfig(parallel_sections=8, k_max=32, backtrace=False)
        steps = []
        RamAccurateAligner(cfg).run(
            job_for("ACGTACGTAC", "ACGTTCGTAC"),
            probe=lambda s, band, col: steps.append(s),
        )
        # One mismatch: s = 2 is off the reachable-score lattice, so the
        # only wavefront step is the terminating one at s = 4.
        assert steps == [4]

    def test_probe_columns_hold_valid_offsets(self):
        cfg = WfasicConfig(parallel_sections=8, k_max=32, backtrace=False)
        a, b = "ACGTACGTACGTAAAA", "ACGTACGTACGTTTTA"

        def probe(s, band, col):
            for k in range(band.lo, band.hi + 1):
                value = col[cfg.k_max - k]
                assert value < 0 or 0 <= value <= len(b)

        RamAccurateAligner(cfg).run(job_for(a, b), probe=probe)
