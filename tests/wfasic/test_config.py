"""Unit tests for the accelerator configuration and Eq. 5/6 limits."""

import pytest

from repro.align import AffinePenalties
from repro.wfasic import WfasicConfig


class TestPaperDefault:
    def test_shipped_configuration(self):
        cfg = WfasicConfig.paper_default()
        assert cfg.num_aligners == 1
        assert cfg.parallel_sections == 64
        assert cfg.max_read_len == 10_000
        assert cfg.penalties == AffinePenalties(4, 6, 2)

    def test_eq6_score_limit(self):
        # Eq. 6 with k_max = 3998: Score_max = 8000.
        assert WfasicConfig.paper_default().max_score == 8000

    def test_worst_case_differences(self):
        # §4: "WFAsic can detect up to 1K differences" (all openings).
        assert WfasicConfig.paper_default().max_differences_worst_case == 1000

    def test_input_seq_ram_depth(self):
        # §4.2: "the depth is at least 627 words".
        assert WfasicConfig.paper_default().input_seq_ram_words == 627

    def test_bt_block_bytes(self):
        # §4.3.3: blocks of 320 bits = 40 bytes for 64 parallel sections.
        assert WfasicConfig.paper_default().bt_block_bytes == 40
        assert WfasicConfig(parallel_sections=32).bt_block_bytes == 20


class TestEq5:
    def test_paper_formula(self):
        cfg = WfasicConfig.paper_default()
        # 8000 >= num_x*4 + num_o*(6+2) + num_e*2 (Eq. 5; num_e here are
        # the extension characters beyond each opening).
        assert cfg.supports(num_x=2000, num_open=0, num_extend=0)
        assert not cfg.supports(num_x=2001, num_open=0, num_extend=0)
        assert cfg.supports(num_x=0, num_open=1000, num_extend=1000)
        assert not cfg.supports(num_x=0, num_open=1001, num_extend=1001)

    def test_mixed_profile(self):
        cfg = WfasicConfig.paper_default()
        # 500*4 + 500*8 + 1000*2 = 8000 exactly.
        assert cfg.supports(num_x=500, num_open=500, num_extend=1500)
        assert not cfg.supports(num_x=501, num_open=500, num_extend=1500)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_aligners": 0},
            {"parallel_sections": 0},
            {"max_read_len": 0},
            {"max_read_len": 1000 + 1},  # not divisible by 16
            {"k_max": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WfasicConfig(**kwargs)

    def test_bt_requires_aligned_parallel_sections(self):
        with pytest.raises(ValueError):
            WfasicConfig(parallel_sections=24, backtrace=True)
        # Fine without backtrace.
        WfasicConfig(parallel_sections=24, backtrace=False)

    def test_with_backtrace_toggle(self):
        cfg = WfasicConfig.paper_default(backtrace=True)
        off = cfg.with_backtrace(False)
        assert off.backtrace is False
        assert off.parallel_sections == cfg.parallel_sections
