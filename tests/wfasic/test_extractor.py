"""Unit tests for the Extractor module (§4.2)."""

import pytest

from repro.wfasic import Extractor
from repro.wfasic.extractor import UNSUPPORTED_BAD_BASE, UNSUPPORTED_TOO_LONG
from repro.wfasic.packets import (
    encode_input_image,
    encode_pair_record,
    pair_record_sections,
    unpack_bases,
)
from repro.workloads import PairGenerator, SequencePair


class TestFraming:
    def test_record_size(self):
        ex = Extractor(48)
        assert ex.record_size() == pair_record_sections(48) * 16

    def test_split_stream(self):
        pairs = PairGenerator(length=40, error_rate=0.1, seed=1).batch(3)
        image = encode_input_image(pairs, 48)
        ex = Extractor(48)
        assert len(ex.split_stream(image)) == 3

    def test_misaligned_stream_rejected(self):
        ex = Extractor(48)
        with pytest.raises(ValueError):
            ex.split_stream(b"\x00" * 17)

    def test_unaligned_max_read_len_rejected(self):
        with pytest.raises(ValueError):
            Extractor(50)


class TestExtraction:
    def test_basic_job(self):
        rec = encode_pair_record(5, "ACGT" * 4, "ACGT" * 5, 96)
        job = Extractor(96).extract(rec)
        assert job.supported
        assert job.alignment_id == 5
        assert job.seq_a == "ACGT" * 4
        assert job.seq_b == "ACGT" * 5
        assert job.len_a == 16 and job.len_b == 20

    def test_packed_words_decode_back(self):
        seq = "TGCA" * 8
        rec = encode_pair_record(1, seq, seq, 48)
        job = Extractor(48).extract(rec)
        # The RAM image decodes to the padded sequence.
        decoded = bytes(unpack_bases(job.packed_a, 32)).decode()
        assert decoded == seq

    def test_extract_cycles_one_section_per_clock(self):
        rec = encode_pair_record(1, "A" * 16, "A" * 16, 48)
        job = Extractor(48).extract(rec)
        assert job.extract_cycles == pair_record_sections(48)

    def test_empty_sequences(self):
        rec = encode_pair_record(2, "", "", 16)
        job = Extractor(16).extract(rec)
        assert job.supported
        assert job.seq_a == "" and job.seq_b == ""

    def test_extract_image_order(self):
        pairs = PairGenerator(length=30, error_rate=0.2, seed=3).batch(4)
        jobs = Extractor(48).extract_image(encode_input_image(pairs, 48))
        assert [j.alignment_id for j in jobs] == [p.pair_id for p in pairs]
        assert all(j.supported for j in jobs)


class TestUnsupportedDetection:
    def test_too_long_rejected(self):
        # True length 100 exceeds the batch MAX_READ_LEN of 48.
        rec = encode_pair_record(7, "C" * 100, "G" * 10, 48)
        job = Extractor(48).extract(rec)
        assert not job.supported
        assert job.unsupported_reason == UNSUPPORTED_TOO_LONG
        assert job.alignment_id == 7  # ID still reported for the CPU

    def test_n_base_rejected(self):
        pair = SequencePair(pattern="ACGNACGT", text="ACGTACGT")
        rec = encode_pair_record(8, pair.pattern, pair.text, 16)
        job = Extractor(16).extract(rec)
        assert not job.supported
        assert job.unsupported_reason == UNSUPPORTED_BAD_BASE

    def test_n_in_text_rejected(self):
        rec = encode_pair_record(9, "ACGT", "ACNT", 16)
        job = Extractor(16).extract(rec)
        assert not job.supported

    def test_dummy_padding_not_validated(self):
        # Garbage beyond the declared length must be ignored: the dummy
        # region is only reachable through the padded image, so craft one.
        rec = bytearray(encode_pair_record(10, "ACGT", "ACGT", 16))
        rec[3 * 16 + 10] = ord("N")  # poison a dummy byte of seq a
        job = Extractor(16).extract(bytearray(rec))
        assert job.supported

    def test_rejection_counters(self):
        ex = Extractor(16)
        ex.extract(encode_pair_record(0, "ACGT", "ACGT", 16))
        ex.extract(encode_pair_record(1, "ACGN", "ACGT", 16))
        assert ex.jobs_extracted == 1
        assert ex.jobs_rejected == 1
