"""Unit tests for the Collector BT/NBT result framing (§4.4)."""

import random

import pytest

from repro.wfasic import (
    Aligner,
    CollectorBT,
    CollectorNBT,
    WfasicConfig,
)
from repro.wfasic.packets import (
    unpack_bt_transaction,
    unpack_nbt_record,
)

from tests.util import random_pair
from tests.wfasic.test_aligner import job_for


def make_runs(n, *, backtrace, seed=80, n_ps=64):
    rng = random.Random(seed)
    cfg = WfasicConfig(parallel_sections=n_ps, backtrace=backtrace)
    aligner = Aligner(cfg)
    runs = []
    for aid in range(n):
        a, b = random_pair(rng, rng.randint(20, 60), 0.2)
        runs.append(aligner.run(job_for(a, b, aid=aid)))
    return runs


class TestCollectorNBT:
    def test_four_records_per_transaction(self):
        out = CollectorNBT().collect(make_runs(8, backtrace=False))
        assert out.num_transactions == 2
        assert out.total_bytes == 32

    def test_partial_transaction_padded(self):
        out = CollectorNBT().collect(make_runs(5, backtrace=False))
        assert out.num_transactions == 2
        assert len(out.transactions[1]) == 16

    def test_records_decode_in_order(self):
        runs = make_runs(6, backtrace=False)
        stream = CollectorNBT().collect(runs).as_stream()
        for i, run in enumerate(runs):
            rec = unpack_nbt_record(stream[i * 4 : i * 4 + 4])
            assert rec.alignment_id == run.alignment_id
            assert rec.score == run.score
            assert rec.success == run.success

    def test_empty_batch(self):
        out = CollectorNBT().collect([])
        assert out.num_transactions == 0


class TestCollectorBT:
    def test_frame_run_structure(self):
        runs = make_runs(1, backtrace=True)
        txns = CollectorBT().frame_run(runs[0])
        # 4 transactions per 40-byte block plus the final score record.
        assert len(txns) == 4 * len(runs[0].bt_blocks) + 1
        parsed = [unpack_bt_transaction(t) for t in txns]
        assert all(not p.last for p in parsed[:-1])
        assert parsed[-1].last
        # Counters are consecutive per alignment.
        assert [p.counter for p in parsed] == list(range(len(parsed)))

    def test_collect_keeps_alignments_consecutive(self):
        runs = make_runs(3, backtrace=True)
        out = CollectorBT().collect(runs)
        ids = [unpack_bt_transaction(t).alignment_id for t in out.transactions]
        # IDs form contiguous runs in completion order.
        seen = []
        for aid in ids:
            if not seen or seen[-1] != aid:
                seen.append(aid)
        assert seen == [r.alignment_id for r in runs]

    def test_interleave_mixes_streams(self):
        runs = make_runs(4, backtrace=True, seed=81)
        out = CollectorBT().interleave(runs, num_aligners=2)
        ids = [unpack_bt_transaction(t).alignment_id for t in out.transactions]
        # Same transaction multiset as the consecutive stream...
        flat = CollectorBT().collect(runs)
        assert sorted(out.transactions) == sorted(flat.transactions)
        # ...but the first two alignments interleave.
        first_last = max(i for i, aid in enumerate(ids) if aid == runs[0].alignment_id)
        second_first = min(
            i for i, aid in enumerate(ids) if aid == runs[1].alignment_id
        )
        assert second_first < first_last

    def test_interleave_single_aligner_is_consecutive(self):
        runs = make_runs(3, backtrace=True, seed=82)
        assert (
            CollectorBT().interleave(runs, 1).transactions
            == CollectorBT().collect(runs).transactions
        )

    def test_run_without_bt_rejected(self):
        runs = make_runs(1, backtrace=False)
        with pytest.raises(ValueError):
            CollectorBT().frame_run(runs[0])

    def test_failed_run_still_reports(self):
        cfg = WfasicConfig(k_max=4, backtrace=True)
        run = Aligner(cfg).run(job_for("A" * 2, "A" * 40, aid=9))
        assert not run.success
        txns = CollectorBT().frame_run(run)
        final = unpack_bt_transaction(txns[-1])
        assert final.last and final.alignment_id == 9

    def test_32ps_blocks_two_transactions_each(self):
        runs = make_runs(1, backtrace=True, n_ps=32, seed=83)
        txns = CollectorBT().frame_run(runs[0])
        assert len(txns) == 2 * len(runs[0].bt_blocks) + 1
