"""Unit tests for the Extend/Compute stage cycle models."""

import numpy as np

from repro.align import NULL_OFFSET
from repro.align.kernels import pad_sequence
from repro.wfasic import ComputeStage, ComputeTimings, ExtendStage, ExtendTimings
from repro.wfasic.extend import group_latencies


class TestGroupLatencies:
    def test_empty(self):
        assert len(group_latencies(np.zeros(0, dtype=np.int64), 64, ExtendTimings())) == 0

    def test_single_group_max(self):
        blocks = np.array([1, 3, 2, 0], dtype=np.int64)
        lat = group_latencies(blocks, 64, ExtendTimings())
        # 5-cycle fill + the longest run in the group.
        assert lat.tolist() == [5 + 3]

    def test_zero_block_group_still_pays_fill(self):
        lat = group_latencies(np.zeros(4, dtype=np.int64), 64, ExtendTimings())
        assert lat.tolist() == [5 + 1]

    def test_multiple_groups(self):
        blocks = np.array([1] * 64 + [4] * 10, dtype=np.int64)
        lat = group_latencies(blocks, 64, ExtendTimings())
        assert lat.tolist() == [6, 9]

    def test_group_size_respected(self):
        blocks = np.array([2, 2, 5, 1], dtype=np.int64)
        lat = group_latencies(blocks, 2, ExtendTimings())
        assert lat.tolist() == [7, 10]

    def test_custom_timings(self):
        t = ExtendTimings(pipeline_fill=3, cycles_per_block=2)
        lat = group_latencies(np.array([4], dtype=np.int64), 64, t)
        assert lat.tolist() == [3 + 8]


class TestExtendStage:
    def test_cycles_accumulate(self):
        a = "ACGT" * 20
        av = pad_sequence(a, sentinel=0xFF)
        bv = pad_sequence(a, sentinel=0xFE)
        stage = ExtendStage(group_size=64)
        offs = np.zeros(1, dtype=np.int64)
        out, cycles = stage.run(av, bv, 80, 80, offs, 0)
        assert out.offsets[0] == 80
        assert cycles == 5 + 5  # ceil(80/16) = 5 blocks
        assert stage.total_cycles == cycles
        assert stage.total_matches == 80


class TestComputeStage:
    def _null(self, width):
        return np.full(width, NULL_OFFSET, dtype=np.int64)

    def test_group_count_cycles(self):
        stage = ComputeStage(group_size=64, emit_origins=False)
        width = 130  # 3 groups of 64
        ks = np.arange(-65, 65, dtype=np.int64)
        m_x = np.zeros(width, dtype=np.int64)
        out, cycles = stage.run(
            m_x, self._null(width), self._null(width), self._null(width),
            self._null(width), ks, 1000, 1000,
        )
        assert cycles == 3 * 3 + 2
        assert stage.total_cells == 3 * width

    def test_origins_emitted_when_requested(self):
        stage = ComputeStage(group_size=64, emit_origins=True)
        ks = np.zeros(1, dtype=np.int64)
        out, _ = stage.run(
            np.array([2], dtype=np.int64), self._null(1), self._null(1),
            self._null(1), self._null(1), ks, 10, 10,
        )
        assert out.origins is not None

    def test_custom_timings(self):
        t = ComputeTimings(cycles_per_group=5, step_overhead=0)
        stage = ComputeStage(group_size=32, emit_origins=False, timings=t)
        ks = np.arange(33, dtype=np.int64)
        _, cycles = stage.run(
            np.zeros(33, dtype=np.int64), self._null(33), self._null(33),
            self._null(33), self._null(33), ks, 100, 100,
        )
        assert cycles == 2 * 5
