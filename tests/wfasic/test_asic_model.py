"""Tests for the ASIC physical model (§4.6 / §5.2)."""

from repro.wfasic import WfasicConfig, asic_report
from repro.wfasic.asic_model import (
    GF22_FREQUENCY_HZ,
    GF22_POWER_W,
    SARGANTANA_AREA_MM2,
    macro_inventory,
)


class TestPaperConfiguration:
    def test_260_macros(self):
        # §5.2: "There are 260 memory macros" — derived, not hard-coded:
        # 128 Input_Seq + 66 M banks + 64 merged I/D banks + 2 FIFOs.
        inv = macro_inventory(WfasicConfig.paper_default())
        assert inv.input_seq_macros == 128
        assert inv.m_wavefront_macros == 66
        assert inv.id_wavefront_macros == 64
        assert inv.fifo_macros == 2
        assert inv.total_macros == 260

    def test_half_megabyte_of_memory(self):
        # §5.2: "uses 0.48MB of memory".
        rep = asic_report(WfasicConfig.paper_default())
        assert 0.45 <= rep.memory_mb <= 0.49

    def test_area_1_6_mm2(self):
        rep = asic_report(WfasicConfig.paper_default())
        assert abs(rep.total_area_mm2 - 1.6) < 0.05

    def test_power_312_mw(self):
        rep = asic_report(WfasicConfig.paper_default())
        assert abs(rep.power_w - GF22_POWER_W) < 1e-9

    def test_soc_fits_3_mm2(self):
        # §1: accelerator + Sargantana "fits in a chip of ~3mm^2".
        rep = asic_report(WfasicConfig.paper_default())
        assert rep.soc_area_mm2 < 3.1
        assert rep.soc_area_mm2 > rep.total_area_mm2
        assert SARGANTANA_AREA_MM2 == 1.37

    def test_frequency(self):
        assert asic_report(WfasicConfig.paper_default()).frequency_hz == GF22_FREQUENCY_HZ


class TestScaling:
    def test_two_small_aligners_cost_more_area(self):
        # §5.4: "One Aligner with 32 parallel sections is only 1.5x
        # smaller than one Aligner with 64 parallel sections.  So using
        # two Aligners with 32 parallel sections requires more area".
        one_64 = asic_report(WfasicConfig(num_aligners=1, parallel_sections=64))
        one_32 = asic_report(WfasicConfig(num_aligners=1, parallel_sections=32))
        two_32 = asic_report(WfasicConfig(num_aligners=2, parallel_sections=32))
        ratio = one_64.total_area_mm2 / one_32.total_area_mm2
        assert 1.2 < ratio < 1.9  # "only ~1.5x smaller"
        assert two_32.total_area_mm2 > one_64.total_area_mm2

    def test_memory_grows_with_aligners(self):
        a1 = asic_report(WfasicConfig(num_aligners=1))
        a2 = asic_report(WfasicConfig(num_aligners=2))
        assert a2.inventory.total_macros > a1.inventory.total_macros
        assert a2.power_w > a1.power_w

    def test_kmax_drives_wavefront_memory(self):
        small = asic_report(WfasicConfig(k_max=100))
        big = asic_report(WfasicConfig(k_max=3998))
        assert big.memory_mb > small.memory_mb
        # Macro *count* is k_max-independent (only depth changes).
        assert big.inventory.total_macros == small.inventory.total_macros
