"""Tests for the Fig. 6 banked wavefront layout and Input_Seq RAMs."""

import numpy as np
import pytest

from repro.align import NULL_OFFSET
from repro.wfasic import WfasicConfig
from repro.wfasic.rams import (
    BankConflictError,
    InputSeqRam,
    WavefrontWindowRam,
    wavefront_geometry,
)
from repro.wfasic.packets import pack_bases


class TestGeometry:
    def test_paper_configuration(self):
        geo = wavefront_geometry(WfasicConfig.paper_default())
        # (4, 6, 2): M needs 4 history columns + frame = 5 (Fig. 6 shows
        # exactly 5 columns); I/D need 1 history + frame = 2.
        assert geo.m_columns == 5
        assert geo.id_columns == 2
        assert geo.m_banks == 64 + 2  # duplicated edge banks
        assert geo.id_banks == 64
        assert geo.rows == 2 * 3998 + 1
        assert geo.rows_per_bank == -(-geo.rows // 64)

    def test_words_per_bank(self):
        geo = wavefront_geometry(WfasicConfig.paper_default())
        assert geo.m_words_per_bank == 5 * geo.rows_per_bank
        # Merged I/D macro holds both I and D column sets (§4.6).
        assert geo.id_words_per_bank == 2 * 2 * geo.rows_per_bank


class TestFig6Mapping:
    """Reproduce the exact example of Fig. 6: 4 parallel sections."""

    def make(self):
        return WavefrontWindowRam(n_ps=4, rows=12, columns=5, duplicate_edges=True)

    def test_bank_assignment_round_robin(self):
        ram = self.make()
        assert [ram.bank_of(r) for r in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_address_layout(self):
        ram = self.make()
        # Column c occupies addresses c*3 .. c*3+2 in each bank (12 rows
        # over 4 banks = 3 words per column per bank).
        assert ram.address_of(0, 0) == 0
        assert ram.address_of(4, 0) == 1
        assert ram.address_of(0, 1) == 3
        assert ram.address_of(11, 4) == 4 * 3 + 2

    def test_group_write_conflict_free(self):
        ram = self.make()
        ram.write_group(0, 4, np.arange(4, dtype=np.int64))
        assert list(ram.column(0)[4:8]) == [0, 1, 2, 3]

    def test_unaligned_group_write_rejected(self):
        ram = self.make()
        with pytest.raises(BankConflictError):
            ram.write_group(0, 3, np.arange(4, dtype=np.int64))

    def test_paper_parallel_read_example(self):
        # §4.3.1: "for calculating the orange-colored cells of the frame
        # column (cells (4:7,4)) in parallel, we require parallel readings
        # from cells (3:8,0)" — 6 rows, needing the duplicated edge banks.
        ram = self.make()
        rows = [3, 4, 5, 6, 7, 8]
        ram.read_rows(0, rows)  # must not raise

    def test_same_read_fails_without_duplicates(self):
        ram = WavefrontWindowRam(n_ps=4, rows=12, columns=5, duplicate_edges=False)
        with pytest.raises(BankConflictError):
            ram.read_rows(0, [3, 4, 5, 6, 7, 8])

    def test_aligned_window_reads_ok_without_duplicates(self):
        # I/D windows only need n_ps shifted cells: always conflict-free.
        ram = WavefrontWindowRam(n_ps=4, rows=12, columns=2, duplicate_edges=False)
        ram.read_rows(0, [3, 4, 5, 6])  # k-1 window
        ram.read_rows(0, [5, 6, 7, 8])  # k+1 window

    def test_three_reads_of_one_bank_fail_even_with_duplicates(self):
        ram = self.make()
        with pytest.raises(BankConflictError):
            ram.read_rows(0, [0, 4, 8])  # bank 0 three times

    def test_columns_initialised_invalid(self):
        ram = self.make()
        assert (ram.column(2) == NULL_OFFSET).all()

    def test_clear_column(self):
        ram = self.make()
        ram.write_group(1, 0, np.arange(4, dtype=np.int64))
        ram.clear_column(1)
        assert (ram.column(1) == NULL_OFFSET).all()

    def test_row_bounds(self):
        ram = self.make()
        with pytest.raises(IndexError):
            ram.bank_of(12)
        with pytest.raises(IndexError):
            ram.address_of(0, 5)


class TestFullScaleMapping:
    def test_64ps_group_access_patterns(self):
        """The shipped geometry supports the compute access schedule."""
        cfg = WfasicConfig.paper_default()
        geo = wavefront_geometry(cfg)
        ram = WavefrontWindowRam(
            n_ps=64, rows=geo.rows, columns=geo.m_columns, duplicate_edges=True
        )
        # For a group at rows r0..r0+63: the s-o-e column read needs rows
        # r0-1..r0+64 (k-1 and k+1 windows together).
        for r0 in (64, 1280, 64 * ((geo.rows // 64) - 1)):
            rows = list(range(r0 - 1, min(r0 + 65, geo.rows)))
            ram.read_rows(0, rows)
            ram.write_group(1, r0, np.arange(64, dtype=np.int64))


class TestInputSeqRam:
    def test_paper_depth(self):
        ram = InputSeqRam(10_000)
        assert ram.depth == 627

    def test_load_and_header(self):
        ram = InputSeqRam(48)
        packed = pack_bases(np.frombuffer(b"ACGT" * 8, dtype=np.uint8))
        ram.load(alignment_id=9, length=32, packed=packed)
        assert ram.alignment_id == 9
        assert ram.length == 32
        assert ram.read_word(0) == 9
        assert ram.read_word(1) == 32
        assert ram.read_word(2) == packed[0]

    def test_overflow_rejected(self):
        ram = InputSeqRam(16)
        with pytest.raises(ValueError):
            ram.load(1, 32, np.zeros(2, dtype=np.uint32))

    def test_address_bounds(self):
        ram = InputSeqRam(16)
        with pytest.raises(IndexError):
            ram.read_word(3)

    def test_stale_data_cleared(self):
        ram = InputSeqRam(32)
        ram.load(1, 32, np.array([7, 7], dtype=np.uint32))
        ram.load(2, 16, np.array([5], dtype=np.uint32))
        assert ram.base_words().tolist() == [5, 0]
