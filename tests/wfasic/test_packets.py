"""Byte-exactness tests for the co-design memory formats."""

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.wfasic.packets import (
    BT_PAYLOAD_BYTES,
    SECTION_BYTES,
    NbtRecord,
    decode_pair_record,
    encode_base,
    decode_base,
    encode_input_image,
    encode_pair_record,
    pack_bases,
    pack_bt_block,
    pack_bt_final_block,
    pack_nbt_record,
    pack_origin_codes,
    pair_record_sections,
    round_up_read_len,
    unpack_bases,
    unpack_bt_final_payload,
    unpack_bt_transaction,
    unpack_nbt_record,
    unpack_origin_codes,
)
from repro.workloads import PairGenerator


class TestBaseCodes:
    def test_roundtrip(self):
        for ch in "ACGT":
            assert decode_base(encode_base(ch)) == ch

    def test_n_rejected(self):
        with pytest.raises(ValueError):
            encode_base("N")

    def test_bad_code(self):
        with pytest.raises(ValueError):
            decode_base(4)


class TestPackBases:
    def test_roundtrip(self):
        seq = np.frombuffer(b"ACGTACGTACGTACGT" * 3, dtype=np.uint8)
        words = pack_bases(seq)
        assert len(words) == 3
        assert bytes(unpack_bases(words, len(seq))) == bytes(seq)

    def test_word_packing_density(self):
        # 16 bases -> exactly one 4-byte word; 'A' = 0 packs to 0.
        words = pack_bases(np.frombuffer(b"A" * 16, dtype=np.uint8))
        assert words.tolist() == [0]
        words = pack_bases(np.frombuffer(b"T" * 16, dtype=np.uint8))
        assert words.tolist() == [0xFFFFFFFF]

    def test_first_base_in_low_bits(self):
        words = pack_bases(np.frombuffer(b"C" + b"A" * 15, dtype=np.uint8))
        assert words[0] == 1

    def test_unaligned_length_rejected(self):
        with pytest.raises(ValueError):
            pack_bases(np.frombuffer(b"ACGT", dtype=np.uint8))

    def test_non_acgt_rejected(self):
        with pytest.raises(ValueError):
            pack_bases(np.frombuffer(b"ACGN" * 4, dtype=np.uint8))


class TestInputImage:
    def test_round_up_read_len(self):
        # §4.2 example: longest read 9010 -> MAX_READ_LEN 9024.
        assert round_up_read_len(9010) == 9024
        assert round_up_read_len(16) == 16
        assert round_up_read_len(1) == 16
        assert round_up_read_len(0) == 16

    def test_record_sections(self):
        # 3 header sections + 2 * (len/16) base sections.
        assert pair_record_sections(112) == 3 + 2 * 7

    def test_pair_record_roundtrip(self):
        rec = encode_pair_record(42, "ACGT" * 5, "ACGT" * 6, 48)
        assert len(rec) == pair_record_sections(48) * SECTION_BYTES
        dec = decode_pair_record(rec, 48)
        assert dec.alignment_id == 42
        assert dec.len_a == 20 and dec.len_b == 24
        assert dec.seq_a[:20] == b"ACGT" * 5
        assert dec.seq_b[:24] == b"ACGT" * 6
        # Dummy padding is 'A'.
        assert dec.seq_a[20:] == b"A" * 28

    def test_overlong_sequence_truncated_but_length_kept(self):
        rec = encode_pair_record(1, "C" * 100, "G" * 10, 48)
        dec = decode_pair_record(rec, 48)
        assert dec.len_a == 100  # true length preserved for detection
        assert len(dec.seq_a) == 48

    def test_image_concatenation(self):
        pairs = PairGenerator(length=32, error_rate=0.1, seed=1).batch(3)
        image = encode_input_image(pairs, 48)
        assert len(image) == 3 * pair_record_sections(48) * SECTION_BYTES
        dec = decode_pair_record(image[: len(image) // 3], 48)
        assert dec.alignment_id == pairs[0].pair_id

    def test_bad_record_size(self):
        with pytest.raises(ValueError):
            decode_pair_record(b"\x00" * 17, 48)

    def test_bad_alignment_id(self):
        with pytest.raises(ValueError):
            encode_pair_record(2**32, "A", "A", 16)


class TestNbtRecords:
    def test_roundtrip(self):
        rec = NbtRecord(alignment_id=513, score=8000, success=True)
        packed = pack_nbt_record(rec)
        assert len(packed) == 4
        assert unpack_nbt_record(packed) == rec

    def test_success_bit_is_msb(self):
        ok = pack_nbt_record(NbtRecord(1, 100, True))
        bad = pack_nbt_record(NbtRecord(1, 100, False))
        assert ok[1] & 0x80 and not bad[1] & 0x80

    def test_score_field_limit(self):
        with pytest.raises(ValueError):
            pack_nbt_record(NbtRecord(1, 2**15, True))

    def test_id_field_limit(self):
        with pytest.raises(ValueError):
            pack_nbt_record(NbtRecord(2**16, 0, True))


class TestBtTransactions:
    def test_block_split(self):
        block = bytes(range(40))
        txns = pack_bt_block(block, first_counter=8, alignment_id=77)
        assert len(txns) == 4
        for i, txn in enumerate(txns):
            parsed = unpack_bt_transaction(txn)
            assert parsed.payload == block[i * 10 : (i + 1) * 10]
            assert parsed.counter == 8 + i
            assert parsed.alignment_id == 77
            assert not parsed.last

    def test_small_block_split(self):
        # 32 parallel sections -> 20-byte blocks -> 2 transactions.
        txns = pack_bt_block(bytes(20), first_counter=0, alignment_id=1)
        assert len(txns) == 2

    def test_bad_block_length(self):
        with pytest.raises(ValueError):
            pack_bt_block(bytes(13), 0, 1)
        with pytest.raises(ValueError):
            pack_bt_block(b"", 0, 1)

    def test_final_block(self):
        txn = pack_bt_final_block(
            success=True, k_reached=-42, score=1234, counter=99, alignment_id=5
        )
        parsed = unpack_bt_transaction(txn)
        assert parsed.last
        assert parsed.counter == 99
        success, k, score = unpack_bt_final_payload(parsed.payload)
        assert success and k == -42 and score == 1234

    def test_final_block_failure_flag(self):
        txn = pack_bt_final_block(False, 0, 0, 0, 3)
        success, _, _ = unpack_bt_final_payload(unpack_bt_transaction(txn).payload)
        assert not success

    def test_id_23_bit_limit(self):
        with pytest.raises(ValueError):
            pack_bt_block(bytes(40), 0, 2**23)

    def test_counter_24_bit_limit(self):
        with pytest.raises(ValueError):
            pack_bt_block(bytes(40), 2**24, 1)


class TestOriginPacking:
    def test_single_block_roundtrip(self):
        codes = np.arange(64, dtype=np.uint8) % 32
        blocks = pack_origin_codes(codes, 64)
        assert len(blocks) == 1 and len(blocks[0]) == 40
        assert (unpack_origin_codes(blocks[0], 64) == codes).all()

    def test_partial_group_zero_padded(self):
        codes = np.full(10, 31, dtype=np.uint8)
        blocks = pack_origin_codes(codes, 64)
        back = unpack_origin_codes(blocks[0], 64)
        assert (back[:10] == 31).all()
        assert (back[10:] == 0).all()

    def test_multiple_blocks(self):
        codes = np.arange(130, dtype=np.uint8) % 32
        blocks = pack_origin_codes(codes, 64)
        assert len(blocks) == 3

    def test_group_size_32(self):
        codes = np.arange(32, dtype=np.uint8) % 32
        blocks = pack_origin_codes(codes, 32)
        assert len(blocks[0]) == 20
        assert (unpack_origin_codes(blocks[0], 32) == codes).all()

    def test_code_range_checked(self):
        with pytest.raises(ValueError):
            pack_origin_codes(np.array([32], dtype=np.uint8), 64)

    @given(
        codes=st.lists(st.integers(min_value=0, max_value=31), min_size=0, max_size=200)
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, codes):
        arr = np.array(codes, dtype=np.uint8)
        blocks = pack_origin_codes(arr, 64)
        back = np.concatenate(
            [unpack_origin_codes(b, 64) for b in blocks]
        ) if blocks else np.zeros(0, dtype=np.uint8)
        assert (back[: len(arr)] == arr).all()
        assert (back[len(arr) :] == 0).all()
