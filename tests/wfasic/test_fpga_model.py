"""Tests for the FPGA prototype resource model (§4.6/§5.3)."""

from repro.wfasic import WfasicConfig
from repro.wfasic.fpga_model import (
    FPGA_FREQUENCY_HZ,
    FpgaDevice,
    U280,
    fpga_report,
    max_aligners_on,
)


class TestDevice:
    def test_u280_paper_figures(self):
        assert U280.luts == 1_304_000
        assert U280.ffs == 2_607_000
        assert U280.dsps == 9_024
        assert U280.bram36 == 2_016
        assert U280.uram == 960

    def test_prototype_clock(self):
        assert FPGA_FREQUENCY_HZ == 50e6


class TestFit:
    def test_shipped_configuration_fits_easily(self):
        rep = fpga_report(WfasicConfig.paper_default(backtrace=False))
        assert rep.fits
        assert rep.lut_utilisation < 0.15
        assert rep.bram_utilisation < 0.25

    def test_ten_aligners_fit(self):
        # Fig. 10 sweeps 1..10 Aligners of 64 PS on the U280.
        rep = fpga_report(
            WfasicConfig(num_aligners=10, parallel_sections=64, backtrace=False)
        )
        assert rep.fits

    def test_max_aligners_is_about_ten(self):
        # The paper stops its sweep at 10; the model's fit limit agrees.
        assert 8 <= max_aligners_on(U280) <= 14

    def test_resources_scale_linearly_with_aligners(self):
        one = fpga_report(WfasicConfig(num_aligners=1, backtrace=False))
        two = fpga_report(WfasicConfig(num_aligners=2, backtrace=False))
        assert two.luts > 1.8 * (one.luts - 14_000)
        assert two.bram36 > one.bram36

    def test_small_device_rejects(self):
        tiny = FpgaDevice("tiny", luts=10_000, ffs=20_000, dsps=0, bram36=64, uram=0)
        assert not fpga_report(
            WfasicConfig.paper_default(backtrace=False), tiny
        ).fits
        assert max_aligners_on(tiny) == 0

    def test_parallel_sections_drive_logic(self):
        narrow = fpga_report(WfasicConfig(parallel_sections=16, backtrace=False))
        wide = fpga_report(WfasicConfig(parallel_sections=128, backtrace=False))
        assert wide.luts > 2 * narrow.luts
