"""Tests for the CPU-side backtrace (§4.5): both methods, full fidelity."""

import random

import pytest

from repro.align import swg_align
from repro.wfasic import (
    Aligner,
    BacktraceStreamError,
    CollectorBT,
    CpuBacktracer,
    StepIndex,
    WfasicConfig,
)
from repro.wfasic.backtrace_cpu import CpuBacktraceWork, parse_bt_stream

from tests.util import assert_valid_cigar, random_pair
from tests.wfasic.test_aligner import job_for


def run_batch(pairs, cfg, aids=None):
    aligner = Aligner(cfg)
    runs = []
    for i, (a, b) in enumerate(pairs):
        runs.append(aligner.run(job_for(a, b, aid=(aids[i] if aids else i))))
    return runs


class TestNoSeparation:
    def test_cigars_match_oracle(self):
        rng = random.Random(90)
        cfg = WfasicConfig.paper_default(backtrace=True)
        pairs = [random_pair(rng, rng.randint(10, 80), 0.25) for _ in range(8)]
        runs = run_batch(pairs, cfg)
        stream = CollectorBT().collect(runs).as_stream()
        seqs = {i: p for i, p in enumerate(pairs)}
        results, work = CpuBacktracer(cfg).process(stream, seqs, separate=False)
        assert len(results) == 8
        for (a, b), res in zip(pairs, results):
            ref = swg_align(a, b)
            assert res.success and res.score == ref.score
            assert_valid_cigar(res.cigar, a, b, cfg.penalties, ref.score)
        assert work.separation_bytes == 0
        assert work.transactions_scanned == len(stream) // 16

    def test_identical_pair(self):
        cfg = WfasicConfig.paper_default(backtrace=True)
        a = "ACGT" * 10
        runs = run_batch([(a, a)], cfg)
        stream = CollectorBT().collect(runs).as_stream()
        results, _ = CpuBacktracer(cfg).process(stream, {0: (a, a)}, separate=False)
        assert results[0].score == 0
        assert results[0].cigar.ops == "M" * 40

    def test_gap_run_not_split_by_coincidental_match(self):
        # Inside a deletion run the sequences can agree by coincidence;
        # the reconstruction must keep the run contiguous (one opening).
        cfg = WfasicConfig.paper_default(backtrace=True)
        a, b = "AAAATTAAAA", "AAAAAAAA"  # delete "TT" (or equivalent)
        runs = run_batch([(a, b)], cfg)
        stream = CollectorBT().collect(runs).as_stream()
        results, _ = CpuBacktracer(cfg).process(stream, {0: (a, b)}, separate=False)
        ref = swg_align(a, b)
        assert results[0].score == ref.score
        assert results[0].cigar.score(cfg.penalties) == ref.score
        assert results[0].cigar.num_gap_opens() == 1

    def test_failed_alignment_reported_unsuccessful(self):
        cfg = WfasicConfig(k_max=6, backtrace=True)
        runs = run_batch([("A" * 30, "T" * 30)], cfg)
        assert not runs[0].success
        stream = CollectorBT().collect(runs).as_stream()
        results, _ = CpuBacktracer(cfg).process(
            stream, {0: ("A" * 30, "T" * 30)}, separate=False
        )
        assert not results[0].success
        assert results[0].cigar is None

    def test_interleaved_stream_rejected(self):
        rng = random.Random(91)
        cfg = WfasicConfig(num_aligners=2, backtrace=True)
        pairs = [random_pair(rng, 40, 0.2) for _ in range(4)]
        runs = run_batch(pairs, cfg)
        stream = CollectorBT().interleave(runs, 2).as_stream()
        with pytest.raises(BacktraceStreamError):
            CpuBacktracer(cfg).process(
                stream, {i: p for i, p in enumerate(pairs)}, separate=False
            )


class TestSeparation:
    def test_interleaved_stream_recovered(self):
        rng = random.Random(92)
        cfg = WfasicConfig(num_aligners=3, backtrace=True)
        pairs = [random_pair(rng, rng.randint(20, 60), 0.3) for _ in range(6)]
        runs = run_batch(pairs, cfg)
        stream = CollectorBT().interleave(runs, 3).as_stream()
        seqs = {i: p for i, p in enumerate(pairs)}
        results, work = CpuBacktracer(cfg).process(stream, seqs, separate=True)
        for res in results:
            a, b = seqs[res.alignment_id]
            ref = swg_align(a, b)
            assert res.success and res.score == ref.score
            assert_valid_cigar(res.cigar, a, b, cfg.penalties, ref.score)
        # Every payload byte was moved during separation.
        assert work.separation_bytes == 10 * work.transactions_scanned

    def test_separation_works_on_consecutive_stream_too(self):
        rng = random.Random(93)
        cfg = WfasicConfig.paper_default(backtrace=True)
        pairs = [random_pair(rng, 30, 0.2) for _ in range(3)]
        runs = run_batch(pairs, cfg)
        stream = CollectorBT().collect(runs).as_stream()
        results, _ = CpuBacktracer(cfg).process(
            stream, {i: p for i, p in enumerate(pairs)}, separate=True
        )
        assert all(r.success for r in results)


class TestStreamValidation:
    def test_truncated_stream_rejected(self):
        cfg = WfasicConfig.paper_default(backtrace=True)
        with pytest.raises(BacktraceStreamError):
            CpuBacktracer(cfg).process(b"\x00" * 15, {}, separate=False)

    def test_missing_last_flag_rejected(self):
        rng = random.Random(94)
        cfg = WfasicConfig.paper_default(backtrace=True)
        pairs = [random_pair(rng, 30, 0.2)]
        runs = run_batch(pairs, cfg)
        stream = CollectorBT().collect(runs).as_stream()
        with pytest.raises(BacktraceStreamError):
            CpuBacktracer(cfg).process(stream[:-16], {0: pairs[0]}, separate=False)

    def test_corrupt_payload_detected(self):
        rng = random.Random(95)
        cfg = WfasicConfig.paper_default(backtrace=True)
        a, b = random_pair(rng, 60, 0.3)
        runs = run_batch([(a, b)], cfg)
        stream = bytearray(CollectorBT().collect(runs).as_stream())
        # Flip payload bits in the middle of the stream; the walk must
        # either produce an invalid chain (error) or a non-optimal CIGAR
        # (which we'd catch by score mismatch) — never crash.
        if len(stream) > 64:
            stream[5] ^= 0xFF
            stream[21] ^= 0xFF
        try:
            results, _ = CpuBacktracer(cfg).process(
                bytes(stream), {0: (a, b)}, separate=False
            )
            if results[0].cigar is not None:
                results[0].cigar.validate(a, b)
        except BacktraceStreamError:
            pass  # detection is the expected outcome

    def test_unknown_alignment_id(self):
        rng = random.Random(96)
        cfg = WfasicConfig.paper_default(backtrace=True)
        pairs = [random_pair(rng, 30, 0.2)]
        runs = run_batch(pairs, cfg, aids=[7])
        stream = CollectorBT().collect(runs).as_stream()
        with pytest.raises(BacktraceStreamError):
            CpuBacktracer(cfg).process(stream, {0: pairs[0]}, separate=False)

    def test_empty_stream(self):
        cfg = WfasicConfig.paper_default(backtrace=True)
        results, work = CpuBacktracer(cfg).process(b"", {}, separate=False)
        assert results == []
        assert work.transactions_scanned == 0


class TestStepIndex:
    def test_block_layout_matches_aligner(self):
        rng = random.Random(97)
        cfg = WfasicConfig.paper_default(backtrace=True)
        for _ in range(5):
            a, b = random_pair(rng, rng.randint(30, 100), 0.2)
            run = Aligner(cfg).run(job_for(a, b))
            idx = StepIndex(cfg, len(a), len(b), run.score)
            assert idx.total_blocks == len(run.bt_blocks)

    def test_locate_bounds(self):
        cfg = WfasicConfig.paper_default(backtrace=True)
        idx = StepIndex(cfg, 100, 100, 20)
        with pytest.raises(BacktraceStreamError):
            idx.locate(3, 0)  # score 3 unreachable
        with pytest.raises(BacktraceStreamError):
            idx.locate(8, 50)  # far outside the band at score 8

    def test_locate_slot_arithmetic(self):
        cfg = WfasicConfig.paper_default(backtrace=True)
        idx = StepIndex(cfg, 1000, 1000, 300)
        # At score 8 the band is -1..1: cell k=0 is slot 1 of block 0...
        block, slot = idx.locate(8, 0)
        assert slot == 1
        # and blocks of later steps come after earlier steps'.
        b2, _ = idx.locate(10, 0)
        assert b2 > block


class TestWorkCounters:
    def test_merge(self):
        w1 = CpuBacktraceWork(transactions_scanned=5, separation_bytes=50)
        w2 = CpuBacktraceWork(walk_ops=3, match_chars=40)
        w1.merge(w2)
        assert w1.transactions_scanned == 5
        assert w1.walk_ops == 3 and w1.match_chars == 40
