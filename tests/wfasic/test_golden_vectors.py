"""Golden known-answer vectors — hardware-style regression pins.

Byte formats are a *contract* between the Extractor, the Collectors and
the CPU backtrace (§4.2/§4.4): any silent change breaks interoperability
with data written by an earlier version.  These vectors pin the exact
bytes, the way an RTL team pins bus-level test vectors.

The dataset golden scores additionally pin the reproducibility of the
named input sets: EXPERIMENTS.md numbers are only comparable across runs
because the sets never drift.
"""

import numpy as np

from repro.align import swg_align
from repro.soc import Soc
from repro.wfasic import WfasicAccelerator, WfasicConfig
from repro.wfasic.packets import (
    NbtRecord,
    encode_input_image,
    encode_pair_record,
    pack_bt_final_block,
    pack_nbt_record,
    pack_origin_codes,
)
from repro.workloads import SequencePair, make_input_set


class TestByteFormatGoldenVectors:
    def test_pair_record(self):
        rec = encode_pair_record(0x11223344, "ACGT", "TGCA", 16)
        assert rec.hex() == (
            "44332211000000000000000000000000"
            "04000000000000000000000000000000"
            "04000000000000000000000000000000"
            "41434754414141414141414141414141"
            "54474341414141414141414141414141"
        )

    def test_nbt_record(self):
        packed = pack_nbt_record(
            NbtRecord(alignment_id=0xBEEF, score=1234, success=True)
        )
        assert packed.hex() == "d284efbe"

    def test_bt_final_block(self):
        txn = pack_bt_final_block(
            success=True, k_reached=-5, score=999, counter=7, alignment_id=42
        )
        assert txn.hex() == "01fbffe70300000000000700002a0080"

    def test_origin_block(self):
        codes = np.array([1, 9, 17, 25, 31], dtype=np.uint8)
        block = pack_origin_codes(codes, 64)[0]
        assert block.hex().startswith("21c5fc01")
        assert len(block) == 40
        assert block[5:] == bytes(35)


class TestEdgeCasePairRecords:
    """Byte-exact §4.2 records for degenerate inputs."""

    def test_empty_pattern_record(self):
        # len_a header is zero; the pattern section is pure dummy 'A's.
        rec = encode_pair_record(1, "", "ACGT", 16)
        assert rec.hex() == (
            "01000000000000000000000000000000"
            "00000000000000000000000000000000"
            "04000000000000000000000000000000"
            "41414141414141414141414141414141"
            "41434754414141414141414141414141"
        )

    def test_overlong_read_keeps_true_length(self):
        # A 20-base read in a 16-base record: bases truncate, the header
        # keeps the true length — the exact signature the Extractor
        # rejects (§4.2).
        rec = encode_pair_record(0, "C" * 20, "ACGT", 16)
        assert int.from_bytes(rec[16:20], "little") == 20
        assert rec[48:64] == b"C" * 16


class TestEdgeCaseAlignments:
    """Golden accelerator outcomes for degenerate sequence pairs."""

    # (pattern, text) -> (score, compact CIGAR) under (x,o,e) = (4,6,2).
    GOLDEN = [
        ("", "ACGT", 14, "4I"),
        ("ACGT", "", 14, "4D"),
        ("", "", 0, ""),
        ("ACGTACGTACGT", "ACGTACGTACGT", 0, "12M"),
        ("AAAA", "CCCC", 16, "4X"),
    ]

    def test_full_fidelity_outcomes(self):
        pairs = [
            SequencePair(pattern=a, text=b, pair_id=i)
            for i, (a, b, _, _) in enumerate(self.GOLDEN)
        ]
        out = Soc(WfasicConfig.paper_default(backtrace=True)).run_accelerated(pairs)
        for i, (a, b, score, compact) in enumerate(self.GOLDEN):
            assert out.success[i], (a, b)
            assert out.scores[i] == score, (a, b)
            assert out.cigars[i].compact() == compact, (a, b)

    def test_max_read_len_boundary_accepted(self):
        # Reads of exactly MAX_READ_LEN are in-contract and must align.
        mrl = 32
        pairs = [
            SequencePair(pattern="ACGT" * 8, text="ACGT" * 8, pair_id=0),
            SequencePair(pattern="ACGT" * 8, text="TGCA" * 8, pair_id=1),
        ]
        accel = WfasicAccelerator(WfasicConfig(max_read_len=mrl, backtrace=False))
        batch = accel.run_image(encode_input_image(pairs, mrl), mrl)
        by_id = {r.alignment_id: r for r in batch.runs}
        assert by_id[0].success and by_id[0].score == 0
        assert by_id[1].success
        assert by_id[1].score == swg_align("ACGT" * 8, "TGCA" * 8).score

    def test_one_past_max_read_len_rejected(self):
        # One base past the boundary: rejected pair-wise, not fatal.
        mrl = 32
        pairs = [
            SequencePair(pattern="A" * 33, text="ACGT", pair_id=0),
            SequencePair(pattern="ACGT", text="ACGT", pair_id=1),
        ]
        accel = WfasicAccelerator(WfasicConfig(max_read_len=mrl, backtrace=False))
        batch = accel.run_image(encode_input_image(pairs, mrl), mrl)
        by_id = {r.alignment_id: r for r in batch.runs}
        assert not by_id[0].success
        assert by_id[1].success and by_id[1].score == 0


class TestDatasetGoldenScores:
    """First-pair SWG scores of the named input sets must never drift."""

    GOLDEN = {
        "100-5%": (46, "ATATTCCCAGGGTTAG", 100),
        "100-10%": (48, "CTACGATGTCCGGAGT", 99),
        "1K-5%": (332, "CAAAGTAGGTGTGCCT", 1000),
        "1K-10%": (686, "ATAGGCGCGTAGCGCG", 984),
    }

    def test_scores_and_prefixes(self):
        for name, (score, prefix, text_len) in self.GOLDEN.items():
            pair = make_input_set(name, 1)[0]
            assert pair.pattern.startswith(prefix), name
            assert len(pair.text) == text_len, name
            assert swg_align(pair.pattern, pair.text).score == score, name
