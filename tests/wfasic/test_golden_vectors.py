"""Golden known-answer vectors — hardware-style regression pins.

Byte formats are a *contract* between the Extractor, the Collectors and
the CPU backtrace (§4.2/§4.4): any silent change breaks interoperability
with data written by an earlier version.  These vectors pin the exact
bytes, the way an RTL team pins bus-level test vectors.

The dataset golden scores additionally pin the reproducibility of the
named input sets: EXPERIMENTS.md numbers are only comparable across runs
because the sets never drift.
"""

import numpy as np

from repro.align import swg_align
from repro.wfasic.packets import (
    NbtRecord,
    encode_pair_record,
    pack_bt_final_block,
    pack_nbt_record,
    pack_origin_codes,
)
from repro.workloads import make_input_set


class TestByteFormatGoldenVectors:
    def test_pair_record(self):
        rec = encode_pair_record(0x11223344, "ACGT", "TGCA", 16)
        assert rec.hex() == (
            "44332211000000000000000000000000"
            "04000000000000000000000000000000"
            "04000000000000000000000000000000"
            "41434754414141414141414141414141"
            "54474341414141414141414141414141"
        )

    def test_nbt_record(self):
        packed = pack_nbt_record(
            NbtRecord(alignment_id=0xBEEF, score=1234, success=True)
        )
        assert packed.hex() == "d284efbe"

    def test_bt_final_block(self):
        txn = pack_bt_final_block(
            success=True, k_reached=-5, score=999, counter=7, alignment_id=42
        )
        assert txn.hex() == "01fbffe70300000000000700002a0080"

    def test_origin_block(self):
        codes = np.array([1, 9, 17, 25, 31], dtype=np.uint8)
        block = pack_origin_codes(codes, 64)[0]
        assert block.hex().startswith("21c5fc01")
        assert len(block) == 40
        assert block[5:] == bytes(35)


class TestDatasetGoldenScores:
    """First-pair SWG scores of the named input sets must never drift."""

    GOLDEN = {
        "100-5%": (46, "ATATTCCCAGGGTTAG", 100),
        "100-10%": (48, "CTACGATGTCCGGAGT", 99),
        "1K-5%": (332, "CAAAGTAGGTGTGCCT", 1000),
        "1K-10%": (686, "ATAGGCGCGTAGCGCG", 984),
    }

    def test_scores_and_prefixes(self):
        for name, (score, prefix, text_len) in self.GOLDEN.items():
            pair = make_input_set(name, 1)[0]
            assert pair.pattern.startswith(prefix), name
            assert len(pair.text) == text_len, name
            assert swg_align(pair.pattern, pair.text).score == score, name
