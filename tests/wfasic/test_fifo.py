"""Unit tests for the show-ahead FIFO (§4.6)."""

import pytest

from repro.wfasic import FifoError, ShowAheadFifo


def word(tag: int) -> bytes:
    return bytes([tag] * 16)


class TestProtocol:
    def test_fifo_order(self):
        fifo = ShowAheadFifo(depth=4)
        for t in range(3):
            fifo.push(word(t))
        assert [fifo.pop()[0] for _ in range(3)] == [0, 1, 2]

    def test_show_ahead_peek(self):
        fifo = ShowAheadFifo(depth=4)
        fifo.push(word(7))
        # Peek is non-destructive: the same word stays visible.
        assert fifo.peek() == word(7)
        assert fifo.peek() == word(7)
        assert len(fifo) == 1
        assert fifo.pop() == word(7)
        assert fifo.empty

    def test_overflow(self):
        fifo = ShowAheadFifo(depth=2)
        fifo.push(word(0))
        fifo.push(word(1))
        assert fifo.full
        with pytest.raises(FifoError):
            fifo.push(word(2))

    def test_underflow(self):
        fifo = ShowAheadFifo(depth=2)
        with pytest.raises(FifoError):
            fifo.peek()
        with pytest.raises(FifoError):
            fifo.pop()

    def test_wrong_width(self):
        fifo = ShowAheadFifo(depth=2)
        with pytest.raises(FifoError):
            fifo.push(b"\x00" * 15)

    def test_paper_geometry_default(self):
        fifo = ShowAheadFifo()
        assert fifo.depth == 256
        assert fifo.width == 16


class TestStatistics:
    def test_peak_occupancy(self):
        fifo = ShowAheadFifo(depth=8)
        for t in range(5):
            fifo.push(word(t))
        fifo.pop()
        fifo.pop()
        fifo.push(word(9))
        assert fifo.peak_occupancy == 5
        assert fifo.total_pushed == 6

    def test_drain(self):
        fifo = ShowAheadFifo(depth=8)
        for t in range(4):
            fifo.push(word(t))
        fifo.pop()
        words = fifo.drain()
        assert [w[0] for w in words] == [1, 2, 3]
        assert fifo.empty

    def test_many_operations_amortised(self):
        # Exercise the lazy compaction path.
        fifo = ShowAheadFifo(depth=16)
        for round_ in range(500):
            fifo.push(word(round_ % 256))
            assert fifo.pop() == word(round_ % 256)
        assert fifo.empty
