"""Tests for the Aligner module: hardware WFA vs the software oracle."""

import random

import pytest

from repro.align import AffinePenalties, swg_align
from repro.wfasic import Aligner, WfasicConfig
from repro.wfasic.extractor import Extractor
from repro.wfasic.packets import encode_pair_record, round_up_read_len
from repro.workloads import make_input_set

from tests.util import random_pair


def job_for(pattern: str, text: str, max_read_len: int | None = None, aid: int = 0):
    mrl = max_read_len or round_up_read_len(max(len(pattern), len(text), 1))
    rec = encode_pair_record(aid, pattern, text, mrl)
    return Extractor(mrl).extract(rec)


class TestScoresMatchOracle:
    def test_small_random_pairs(self):
        rng = random.Random(61)
        aligner = Aligner(WfasicConfig.paper_default(backtrace=False))
        for _ in range(40):
            a, b = random_pair(rng, rng.randint(1, 60), 0.3)
            run = aligner.run(job_for(a, b))
            assert run.success
            assert run.score == swg_align(a, b).score

    def test_paper_input_sets_small_sample(self):
        aligner = Aligner(WfasicConfig.paper_default(backtrace=False))
        for name in ("100-5%", "100-10%"):
            for pair in make_input_set(name, 4):
                run = aligner.run(job_for(pair.pattern, pair.text))
                assert run.success
                assert run.score == swg_align(pair.pattern, pair.text).score

    def test_identical_pair_score_zero(self):
        aligner = Aligner(WfasicConfig.paper_default(backtrace=False))
        run = aligner.run(job_for("ACGT" * 10, "ACGT" * 10))
        assert run.success and run.score == 0
        assert run.stats.wavefront_steps == 1  # just the s=0 extension

    def test_empty_vs_nonempty(self):
        aligner = Aligner(WfasicConfig.paper_default(backtrace=False))
        run = aligner.run(job_for("", "ACGTACGTACGTACGT"))
        assert run.success
        assert run.score == 6 + 2 * 16

    def test_other_parallel_section_counts(self):
        rng = random.Random(62)
        for n_ps in (16, 32, 64, 128):
            aligner = Aligner(
                WfasicConfig(parallel_sections=n_ps, backtrace=False)
            )
            a, b = random_pair(rng, 50, 0.2)
            run = aligner.run(job_for(a, b))
            assert run.score == swg_align(a, b).score


class TestHardwareLimits:
    def test_score_limit_clears_success(self):
        # 30 mismatches = score 120 > Score_max for k_max = 10 (= 24).
        cfg = WfasicConfig(k_max=10, backtrace=False)
        run = Aligner(cfg).run(job_for("A" * 30, "T" * 30))
        assert not run.success
        assert run.score == 0

    def test_score_exactly_at_limit_succeeds(self):
        # k_max = 58 -> Score_max = 120 = the alignment score.
        cfg = WfasicConfig(k_max=58, backtrace=False)
        run = Aligner(cfg).run(job_for("A" * 30, "T" * 30))
        assert run.success and run.score == 120

    def test_kmax_band_clamp_still_exact(self):
        # A pair whose optimal path stays near the main diagonal must be
        # exact even with a tight k_max.
        rng = random.Random(63)
        a, b = random_pair(rng, 80, 0.1)
        ref = swg_align(a, b).score
        cfg = WfasicConfig(k_max=200, backtrace=False)
        run = Aligner(cfg).run(job_for(a, b))
        assert run.success and run.score == ref

    def test_final_diagonal_outside_kmax_fails(self):
        cfg = WfasicConfig(k_max=4, backtrace=False)
        run = Aligner(cfg).run(job_for("A" * 2, "A" * 30))
        assert not run.success

    def test_unsupported_job_skipped(self):
        cfg = WfasicConfig.paper_default(backtrace=False)
        job = job_for("ACGN", "ACGT", max_read_len=16, aid=3)
        run = Aligner(cfg).run(job)
        assert not run.success
        assert run.alignment_id == 3
        assert run.stats.wavefront_steps == 0


class TestCycleModel:
    def test_cycles_grow_with_errors(self):
        aligner = Aligner(WfasicConfig.paper_default(backtrace=False))
        rng = random.Random(64)
        a, b_low = random_pair(rng, 200, 0.02)
        _, b_high = random_pair(rng, 200, 0.0)  # placeholder, regenerate
        a2, b_high = random_pair(rng, 200, 0.25)
        low = aligner.run(job_for(a, b_low)).cycles
        high = aligner.run(job_for(a2, b_high)).cycles
        assert high > low

    def test_cycles_scale_with_parallel_sections(self):
        # Halving the sections roughly doubles group counts for wide
        # wavefronts -> more cycles.
        rng = random.Random(65)
        a, b = random_pair(rng, 400, 0.15)
        wide = Aligner(WfasicConfig(parallel_sections=64, backtrace=False))
        narrow = Aligner(WfasicConfig(parallel_sections=16, backtrace=False))
        c_wide = wide.run(job_for(a, b)).cycles
        c_narrow = narrow.run(job_for(a, b)).cycles
        assert c_narrow > c_wide

    def test_short_reads_insensitive_to_sections(self):
        # §5.4: "for short reads, the wavefront matrix is very small and
        # most of the parallel sections are idle" — 64 vs 32 PS is ~same.
        pair = make_input_set("100-5%", 1)[0]
        job = job_for(pair.pattern, pair.text)
        c64 = Aligner(WfasicConfig(parallel_sections=64, backtrace=False)).run(job).cycles
        c32 = Aligner(WfasicConfig(parallel_sections=32, backtrace=False)).run(job).cycles
        assert abs(c64 - c32) / c64 < 0.25

    def test_stats_populated(self):
        rng = random.Random(66)
        a, b = random_pair(rng, 100, 0.1)
        run = Aligner(WfasicConfig.paper_default(backtrace=False)).run(job_for(a, b))
        st = run.stats
        assert st.wavefront_steps > 0
        assert st.cells_processed > 0
        assert st.compute_cycles > 0 and st.extend_cycles > 0
        assert st.compute_cycles + st.extend_cycles <= run.cycles


class TestBacktraceEmission:
    def test_blocks_only_when_enabled(self):
        rng = random.Random(67)
        a, b = random_pair(rng, 60, 0.2)
        on = Aligner(WfasicConfig.paper_default(backtrace=True)).run(job_for(a, b))
        off = Aligner(WfasicConfig.paper_default(backtrace=False)).run(job_for(a, b))
        assert on.bt_blocks and all(len(blk) == 40 for blk in on.bt_blocks)
        assert off.bt_blocks is None

    def test_block_count_matches_layout(self):
        from repro.wfasic import StepIndex

        rng = random.Random(68)
        a, b = random_pair(rng, 120, 0.15)
        cfg = WfasicConfig.paper_default(backtrace=True)
        run = Aligner(cfg).run(job_for(a, b))
        index = StepIndex(cfg, len(a), len(b), run.score)
        assert len(run.bt_blocks) == index.total_blocks

    def test_same_score_with_and_without_backtrace(self):
        rng = random.Random(69)
        for _ in range(10):
            a, b = random_pair(rng, 80, 0.25)
            on = Aligner(WfasicConfig.paper_default(backtrace=True)).run(job_for(a, b))
            off = Aligner(WfasicConfig.paper_default(backtrace=False)).run(job_for(a, b))
            assert on.score == off.score


class TestOtherPenalties:
    @pytest.mark.parametrize(
        "pen", [AffinePenalties(2, 3, 1), AffinePenalties(5, 0, 3)]
    )
    def test_exactness(self, pen):
        rng = random.Random(70)
        cfg = WfasicConfig(penalties=pen, backtrace=False)
        aligner = Aligner(cfg)
        for _ in range(15):
            a, b = random_pair(rng, 50, 0.3)
            run = aligner.run(job_for(a, b))
            assert run.score == swg_align(a, b, pen).score
