"""Tests for the WFAsic top level: batching, scheduling, Eq. 7."""

import pytest

from repro.align import swg_align
from repro.wfasic import (
    WfasicAccelerator,
    WfasicConfig,
    max_efficient_aligners,
    read_pair_cycles,
)
from repro.wfasic.dma import DmaTimings, beats_for_bytes, stream_cycles
from repro.wfasic.packets import encode_input_image, round_up_read_len, unpack_nbt_record
from repro.workloads import make_input_set


def build_batch(name, n):
    pairs = make_input_set(name, n)
    mrl = round_up_read_len(max(p.max_length for p in pairs))
    return pairs, encode_input_image(pairs, mrl), mrl


class TestDmaModel:
    def test_table1_reading_cycles_100bp(self):
        # Table 1: 100 bp inputs cost 75 reading cycles per pair.
        assert read_pair_cycles(112) == 75

    def test_table1_reading_cycles_1k_within_2pct(self):
        assert abs(read_pair_cycles(1008) - 376) / 376 < 0.03

    def test_table1_reading_cycles_10k_within_2pct(self):
        assert abs(read_pair_cycles(10_000) - 3420) / 3420 < 0.02

    def test_beats_and_streams(self):
        assert beats_for_bytes(0) == 0
        assert beats_for_bytes(1) == 1
        assert beats_for_bytes(16) == 1
        assert beats_for_bytes(17) == 2
        t = DmaTimings()
        assert stream_cycles(0, t) == 0
        assert stream_cycles(4, t) == 11
        assert stream_cycles(5, t) == 22

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DmaTimings(burst_beats=0)
        with pytest.raises(ValueError):
            beats_for_bytes(-1)


class TestEq7:
    def test_paper_examples(self):
        # Table 1's last column from its cycle columns.
        assert max_efficient_aligners(214, 75) == 4
        assert max_efficient_aligners(327, 75) == 6
        assert max_efficient_aligners(2541, 376) == 8
        assert max_efficient_aligners(8461, 376) == 24
        assert max_efficient_aligners(278083, 3420) == 83
        assert max_efficient_aligners(937630, 3420) == 276

    def test_validation(self):
        with pytest.raises(ValueError):
            max_efficient_aligners(100, 0)
        with pytest.raises(ValueError):
            max_efficient_aligners(-1, 10)


class TestBatchExecution:
    def test_scores_match_oracle(self):
        pairs, image, mrl = build_batch("100-10%", 6)
        acc = WfasicAccelerator(WfasicConfig.paper_default(backtrace=False))
        res = acc.run_image(image, mrl)
        for pair, run in zip(pairs, res.runs):
            assert run.success
            assert run.score == swg_align(pair.pattern, pair.text).score

    def test_nbt_stream_decodes(self):
        pairs, image, mrl = build_batch("100-5%", 5)
        acc = WfasicAccelerator(WfasicConfig.paper_default(backtrace=False))
        res = acc.run_image(image, mrl)
        stream = res.output.as_stream()
        for i, pair in enumerate(pairs):
            rec = unpack_nbt_record(stream[i * 4 : (i + 1) * 4])
            assert rec.alignment_id == pair.pair_id

    def test_mrl_over_hardware_limit_rejected(self):
        acc = WfasicAccelerator(WfasicConfig(max_read_len=48, backtrace=False))
        with pytest.raises(ValueError):
            acc.run_image(b"", 64)

    def test_empty_batch(self):
        acc = WfasicAccelerator(WfasicConfig.paper_default(backtrace=False))
        res = acc.run_image(b"", 48)
        assert res.total_cycles == 0
        assert res.runs == []

    def test_broken_pair_flows_through(self):
        from repro.wfasic.packets import encode_pair_record

        image = encode_pair_record(0, "ACGN", "ACGT", 48) + encode_pair_record(
            1, "ACGT", "ACGT", 48
        )
        acc = WfasicAccelerator(WfasicConfig.paper_default(backtrace=False))
        res = acc.run_image(image, 48)
        assert not res.runs[0].success
        assert res.runs[1].success and res.runs[1].score == 0

    def test_run_for_lookup(self):
        pairs, image, mrl = build_batch("100-5%", 3)
        res = WfasicAccelerator(
            WfasicConfig.paper_default(backtrace=False)
        ).run_image(image, mrl)
        assert res.run_for(pairs[1].pair_id).alignment_id == pairs[1].pair_id
        with pytest.raises(KeyError):
            res.run_for(999)


class TestScheduling:
    def test_single_aligner_serial(self):
        pairs, image, mrl = build_batch("100-10%", 4)
        acc = WfasicAccelerator(WfasicConfig.paper_default(backtrace=False))
        res = acc.run_image(image, mrl)
        # With one Aligner the makespan is the serial sum.
        expect = sum(res.reading_cycles_per_pair + r.cycles for r in res.runs)
        assert res.total_cycles == expect

    def test_reads_wait_for_idle_aligner(self):
        pairs, image, mrl = build_batch("100-10%", 4)
        res = WfasicAccelerator(
            WfasicConfig.paper_default(backtrace=False)
        ).run_image(image, mrl)
        sched = res.schedule
        for i in range(1, len(sched)):
            assert sched[i].read_start >= sched[i - 1].read_end

    def test_more_aligners_never_slower(self):
        pairs, image, mrl = build_batch("100-10%", 10)
        prev = None
        for na in (1, 2, 4):
            cfg = WfasicConfig(num_aligners=na, backtrace=False)
            t = WfasicAccelerator(cfg).run_image(image, mrl).total_cycles
            if prev is not None:
                assert t <= prev
            prev = t

    def test_scaling_saturates_at_eq7(self):
        """Beyond Eq. 7's MaxAligners, extra Aligners stop helping."""
        pairs, image, mrl = build_batch("100-5%", 24)
        base = WfasicAccelerator(
            WfasicConfig(num_aligners=1, backtrace=False)
        ).run_image(image, mrl)
        align_avg = sum(base.alignment_cycles) / len(base.runs)
        k = max_efficient_aligners(int(align_avg), base.reading_cycles_per_pair)
        t_at_k = WfasicAccelerator(
            WfasicConfig(num_aligners=k, backtrace=False)
        ).run_image(image, mrl).total_cycles
        t_beyond = WfasicAccelerator(
            WfasicConfig(num_aligners=k + 4, backtrace=False)
        ).run_image(image, mrl).total_cycles
        # Speedup beyond the knee is marginal (< 10% further gain).
        assert t_beyond > t_at_k * 0.9

    def test_long_reads_scale_nearly_linearly(self):
        pairs, image, mrl = build_batch("1K-10%", 6)
        t1 = WfasicAccelerator(
            WfasicConfig(num_aligners=1, backtrace=False)
        ).run_image(image, mrl).total_cycles
        t3 = WfasicAccelerator(
            WfasicConfig(num_aligners=3, backtrace=False)
        ).run_image(image, mrl).total_cycles
        assert t1 / t3 > 2.4  # near-linear x3 speedup

    def test_bt_output_accounted(self):
        pairs, image, mrl = build_batch("100-10%", 3)
        res = WfasicAccelerator(
            WfasicConfig.paper_default(backtrace=True)
        ).run_image(image, mrl)
        assert res.output_cycles > 0
        assert res.total_cycles >= res.output_cycles


class TestScheduleConsistency:
    def test_batch_makespan_matches_schedule_function(self):
        """The accelerator's internal schedule and the standalone
        schedule_makespan (used by the Fig. 10 sweep) must agree."""
        from repro.wfasic import schedule_makespan

        pairs, image, mrl = build_batch("100-10%", 10)
        for aligners in (1, 2, 3, 5):
            cfg = WfasicConfig(num_aligners=aligners, backtrace=False)
            res = WfasicAccelerator(cfg).run_image(image, mrl)
            replay = schedule_makespan(
                res.reading_cycles_per_pair,
                [r.cycles for r in res.runs],
                aligners,
            )
            # The batch total is max(compute makespan, output drain); with
            # backtrace off the output stream is tiny, so they coincide.
            assert res.total_cycles == replay

    def test_schedule_end_times_consistent(self):
        pairs, image, mrl = build_batch("100-5%", 6)
        cfg = WfasicConfig(num_aligners=2, backtrace=False)
        res = WfasicAccelerator(cfg).run_image(image, mrl)
        for sched, run in zip(res.schedule, res.runs):
            assert sched.align_end == sched.read_end + run.cycles
            assert sched.read_end == sched.read_start + res.reading_cycles_per_pair
        assert res.total_cycles == max(s.align_end for s in res.schedule)
