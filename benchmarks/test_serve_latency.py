"""Serving-layer benchmark: micro-batching vs batch-size-1 dispatch.

ISSUE 8's acceptance number: with concurrent clients, the micro-batching
scheduler must sustain **at least 2x** the pairs/s of the same server
forced to dispatch every request alone (``batch_window=0``,
``max_batch=1``).  The mechanism being measured is amortisation — the
engine's fixed per-dispatch cost (payload build, report assembly,
executor hand-off) is paid once per batch instead of once per request —
so the workload is deliberately duplicate-free: every client sends its
own unique pairs and the LRU cache never flatters either configuration.

Results land in ``BENCH_pr8.json`` (section ``serve_micro_batching``)
with sustained pairs/s, the speedup, mean batch size, and p50/p99
request latencies estimated from the ``serve_request_latency_seconds``
histogram.
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro.engine import EngineConfig
from repro.obs import MetricsRegistry
from repro.serve import AlignmentServer, ServeClient, ServeConfig
from repro.workloads import PairGenerator

CLIENTS = 8
PAIRS_PER_CLIENT = 40
READ_LEN = 64


class _Server:
    """An :class:`AlignmentServer` on a private event-loop thread."""

    def __init__(self, serve_config: ServeConfig) -> None:
        self.registry = MetricsRegistry()
        # The batched backend is the whole point of micro-batching: its
        # cross-pair lockstep kernels amortise per-step dispatch across
        # everything in the chunk, which batch-size-1 can never feed.
        self.server = AlignmentServer(
            EngineConfig(workers=1, backend="batched", chunk_size=64),
            serve_config,
            port=0,
            registry=self.registry,
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10), "server failed to start"

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.wait_closed()

    def shutdown(self) -> None:
        assert self._loop is not None
        asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop
        ).result(30)
        self._thread.join(10)


def _client_workloads() -> list[list[tuple[str, str]]]:
    """One unique pair list per client (no cross-client duplicates)."""
    return [
        [
            (p.pattern, p.text)
            for p in PairGenerator(
                length=READ_LEN, error_rate=0.05, seed=1000 + idx
            ).batch(PAIRS_PER_CLIENT)
        ]
        for idx in range(CLIENTS)
    ]


def _run_config(serve_config: ServeConfig) -> dict:
    """Drive CLIENTS concurrent pipelined clients; sustained numbers."""
    handle = _Server(serve_config)
    host, port = handle.server.address
    workloads = _client_workloads()
    barrier = threading.Barrier(CLIENTS)
    failures: list[str] = []

    def one_client(idx: int) -> None:
        with ServeClient(host, port) as client:
            barrier.wait(10)
            responses = client.align_many(workloads[idx])
            bad = [r for r in responses if not r.get("ok")]
            if bad:
                failures.append(f"client {idx}: {bad[0]}")

    threads = [
        threading.Thread(target=one_client, args=(i,)) for i in range(CLIENTS)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    elapsed = time.perf_counter() - start
    assert not failures, failures[0]

    snap = handle.registry.snapshot()
    handle.shutdown()
    latency = snap["serve_request_latency_seconds"]["series"][0]["value"]
    sizes = snap["serve_batch_size"]["series"][0]["value"]
    total = CLIENTS * PAIRS_PER_CLIENT
    return {
        "pairs": total,
        "elapsed_seconds": round(elapsed, 4),
        "pairs_per_second": round(total / elapsed, 1),
        "batches": sizes["count"],
        "mean_batch_size": round(sizes["sum"] / sizes["count"], 2),
        "latency_p50_ms": round(_percentile_ms(latency, 0.50), 3),
        "latency_p99_ms": round(_percentile_ms(latency, 0.99), 3),
        "latency_mean_ms": round(latency["sum"] / latency["count"] * 1e3, 3),
    }


def _percentile_ms(value: dict, q: float) -> float:
    """Upper-bound percentile estimate from a histogram snapshot."""
    target = q * value["count"]
    seen = 0
    for bound, count in zip(value["buckets"], value["counts"]):
        seen += count
        if seen >= target:
            return bound * 1e3
    return value["max"] * 1e3


class TestServeMicroBatching:
    def test_micro_batching_at_least_doubles_throughput(
        self, bench_json_pr8, report_table
    ):
        single = _run_config(ServeConfig(batch_window=0.0, max_batch=1))
        batched = _run_config(ServeConfig(batch_window=0.002, max_batch=64))
        speedup = batched["pairs_per_second"] / single["pairs_per_second"]

        rows = [
            ("batch-size-1", single),
            ("micro-batched", batched),
        ]
        lines = [
            f"Serve micro-batching — {CLIENTS} clients x "
            f"{PAIRS_PER_CLIENT} unique pairs ({READ_LEN} bp)",
            f"{'config':<14} {'pairs/s':>9} {'batches':>8} "
            f"{'mean size':>10} {'p50 ms':>8} {'p99 ms':>8}",
        ]
        for label, r in rows:
            lines.append(
                f"{label:<14} {r['pairs_per_second']:>9} {r['batches']:>8} "
                f"{r['mean_batch_size']:>10} {r['latency_p50_ms']:>8} "
                f"{r['latency_p99_ms']:>8}"
            )
        lines.append(f"speedup: {speedup:.2f}x (acceptance floor: 2.00x)")
        report_table("\n".join(lines))

        bench_json_pr8(
            "serve_micro_batching",
            {
                "clients": CLIENTS,
                "pairs_per_client": PAIRS_PER_CLIENT,
                "read_length": READ_LEN,
                "batch_size_1": single,
                "micro_batched": batched,
                "speedup": round(speedup, 2),
            },
        )

        assert batched["mean_batch_size"] > 1.5, (
            "micro-batching never formed real batches"
        )
        assert speedup >= 2.0, (
            f"micro-batching speedup {speedup:.2f}x below the 2x floor"
        )
