"""Ablation benches — quantifying the design choices the paper makes.

Not a paper table, but the analysis behind several of its claims:

* **exact vs heuristic** (§6): WFA/WFAsic vs an ABSW-style adaptive
  banded heuristic — accuracy on indel-heavy inputs and work ratios;
* **DMA burst length** (Table 1 context): how the input-path bandwidth
  moves Eq. 7's MaxAligners knee ("Increasing the accelerator-memory
  bandwidth would ... improve the scalability of the designs for short
  reads");
* **duplicated edge banks** (Fig. 6): the cycle cost of dropping
  RAM 1'/RAM 4' and serialising the k-1/k+1 reads instead;
* **k_max** (Eq. 6): supported error score vs on-chip memory;
* **output-port contention** (§4.1): the fluid-pipeline view of how the
  backtrace stream throttles multi-Aligner scaling.
"""

import random
import statistics

from repro.align import swg_align, wfa_align
from repro.align.banded import banded_swg_score
from repro.reporting import format_comparison, format_table
from repro.wfasic import (
    Aligner,
    AlignerTimings,
    ComputeTimings,
    WfasicConfig,
    asic_report,
    max_efficient_aligners,
)
from repro.wfasic.dma import DmaTimings, read_pair_cycles
from repro.wfasic.pipeline import FluidPipelineSim, PipelineJob
from repro.workloads import PairGenerator, make_input_set

from tests.util import random_pair
from tests.wfasic.test_aligner import job_for


def test_exact_vs_banded_heuristic(report_table, benchmark):
    """§6: heuristics trade accuracy; WFA is exact at comparable work."""
    rng = random.Random(42)
    rows = []
    for rate, indel_bias in ((0.05, False), (0.10, False), (0.10, True)):
        pairs = []
        for _ in range(20):
            if indel_bias:
                # Structural-variant-style inputs: one long insertion.
                a, _ = random_pair(rng, 200, 0.0)
                cut = rng.randrange(50, 150)
                ins = "".join(rng.choice("ACGT") for _ in range(40))
                b = a[:cut] + ins + a[cut:]
            else:
                a, b = random_pair(rng, 200, rate)
            pairs.append((a, b))
        exact_hits = 0
        banded_cells = 0
        wfa_cells = 0
        for a, b in pairs:
            ref = swg_align(a, b).score
            banded = banded_swg_score(a, b, band_width=32)
            if banded.reached_end and banded.score == ref:
                exact_hits += 1
            banded_cells += banded.cells_computed
            wfa_cells += wfa_align(a, b).work.cells_computed
        label = "long-indel" if indel_bias else f"uniform {rate:.0%}"
        rows.append(
            [label, f"{exact_hits}/20", banded_cells // 20, wfa_cells // 20]
        )

    report_table(
        format_comparison(
            ["workload", "banded exact", "banded cells", "WFA cells"],
            rows,
            title="Ablation — exact WFA vs ABSW-style banded heuristic (band 32)",
            note="WFA is exact on every input; the band misses long indels",
        )
    )
    # WFA must be exact everywhere; the banded heuristic must lose
    # accuracy on the long-indel workload.
    assert rows[0][1] in ("19/20", "20/20")
    assert int(rows[2][1].split("/")[0]) < 10

    benchmark(lambda: banded_swg_score("ACGT" * 50, "ACGT" * 50, 32))


def test_dma_burst_ablation(measurements, report_table, benchmark):
    """Input-path bandwidth vs Eq. 7's scalability knee.

    Each burst costs its data beats plus a fixed 7-cycle protocol
    overhead, so longer bursts amortise the overhead and raise the
    sustained bandwidth; the 1 kbp records are long enough that burst
    padding is negligible.
    """
    m = measurements["1K-5%"]
    align = int(statistics.mean(m.align_cycles_nbt))
    rows = []
    for beats in (2, 4, 8, 16):
        timings = DmaTimings(burst_beats=beats, cycles_per_burst=beats + 7)
        read = read_pair_cycles(m.max_read_len, timings)
        rows.append(
            [
                f"{beats}-beat bursts",
                read,
                max_efficient_aligners(align, read),
            ]
        )
    report_table(
        format_comparison(
            ["DMA configuration", "read cyc (1 kbp)", "MaxAligners"],
            rows,
            title="Ablation — DMA burst length vs Eq. 7 knee (1K-5%)",
            note="§5.3: more accelerator-memory bandwidth lifts the "
            "scalability ceiling",
        )
    )
    reads = [r[1] for r in rows]
    knees = [r[2] for r in rows]
    assert reads == sorted(reads, reverse=True)  # longer bursts read faster
    assert knees == sorted(knees)  # ... and raise the Eq. 7 knee
    assert knees[-1] > knees[0]

    benchmark(lambda: read_pair_cycles(m.max_read_len))


def test_duplicate_edge_banks_ablation(report_table, benchmark):
    """Fig. 6: without RAM 1'/4', the s-o-e column needs two sequential
    reads -> one extra cycle per compute group."""
    rng = random.Random(43)
    pairs = [random_pair(rng, 800, 0.1) for _ in range(3)]
    base = AlignerTimings()
    no_dup = AlignerTimings(
        compute=ComputeTimings(
            cycles_per_group=base.compute.cycles_per_group + 1,
            step_overhead=base.compute.step_overhead,
        )
    )
    cfg = WfasicConfig.paper_default(backtrace=False)
    with_dup = sum(
        Aligner(cfg, base).run(job_for(a, b)).cycles for a, b in pairs
    )
    without_dup = sum(
        Aligner(cfg, no_dup).run(job_for(a, b)).cycles for a, b in pairs
    )
    overhead = without_dup / with_dup - 1
    report_table(
        format_comparison(
            ["variant", "cycles (3x800bp-10%)"],
            [
                ["duplicated edge banks (shipped)", with_dup],
                ["no duplicates, serialised read", without_dup],
            ],
            title="Ablation — Fig. 6 duplicated edge banks",
            note=f"dropping the duplicates costs {overhead:.1%} cycles for "
            "two extra macros",
        )
    )
    assert 0.02 < overhead < 0.25

    benchmark(lambda: Aligner(cfg, base).run(job_for(*pairs[0])))


def test_kmax_ablation(report_table, benchmark):
    """Eq. 6: supported error score vs on-chip memory."""
    rows = []
    for k_max in (500, 1000, 2000, 3998):
        cfg = WfasicConfig(k_max=k_max, backtrace=False)
        rep = asic_report(cfg)
        rows.append(
            [
                k_max,
                cfg.max_score,
                cfg.max_differences_worst_case,
                round(rep.memory_mb, 3),
                round(rep.total_area_mm2, 2),
            ]
        )
    report_table(
        format_comparison(
            ["k_max", "Score_max (Eq. 6)", "worst-case diffs", "mem MB", "area mm2"],
            rows,
            title="Ablation — k_max vs supported error and silicon",
            note="the shipped k_max=3998 gives the paper's score<=8000 / "
            "<=1K differences",
        )
    )
    assert rows[-1][1] == 8000
    assert rows[-1][2] == 1000
    mems = [r[3] for r in rows]
    assert mems == sorted(mems)

    benchmark(lambda: asic_report(WfasicConfig(k_max=3998)))


def test_output_contention_ablation(measurements, report_table, benchmark):
    """§4.1: the backtrace stream throttles multi-Aligner scaling."""
    m = measurements["1K-10%"]
    align = int(statistics.mean(m.align_cycles_nbt))
    # Measured transactions per alignment of the BT stream.
    txns = m.extras["bt_txns_per_pair"]
    rows = []
    for aligners in (1, 2, 4, 8):
        jobs_nbt = [
            PipelineJob(m.reading_cycles, align, 0) for _ in range(16)
        ]
        jobs_bt = [
            PipelineJob(m.reading_cycles, align, txns) for _ in range(16)
        ]
        sim = FluidPipelineSim(aligners)
        t_nbt = sim.run(jobs_nbt).makespan
        t_bt = sim.run(jobs_bt).makespan
        rows.append([aligners, int(t_nbt), int(t_bt), round(t_bt / t_nbt, 2)])
    report_table(
        format_comparison(
            ["Aligners", "no-BT makespan", "BT makespan", "BT penalty (x)"],
            rows,
            title="Ablation — output-port contention with backtrace on "
            "(fluid model, 1K-10%)",
            note="the BT stream saturates the 16-byte output port as "
            "Aligners scale — §4.1's bandwidth warning",
        )
    )
    penalties = [r[3] for r in rows]
    assert penalties[-1] > penalties[0]  # contention grows with Aligners
    assert penalties[-1] > 1.5

    benchmark(lambda: FluidPipelineSim(4).run(
        [PipelineJob(m.reading_cycles, align, txns) for _ in range(16)]
    ))
