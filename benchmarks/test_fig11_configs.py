"""Figure 11 — design-configuration comparison with backtrace enabled.

Three configurations, normalised to 1-64PS [Sep] = 1 as in the figure:

* **1-64PS [Sep]** — one Aligner, 64 parallel sections, CPU backtrace
  *with* the data-separation step,
* **2-32PS [Sep]** — two Aligners of 32 sections (separation required,
  streams interleave),
* **1-64PS [NoSep]** — the shipped configuration: one Aligner, no
  separation.

Paper findings to reproduce: eliminating the separation step wins
everywhere and increasingly with read length (6.7x .. 180.4x); two small
Aligners only help short reads on the accelerator side (1.7x-ish) and
tie on long reads.
"""

from repro.reporting import format_comparison, write_csv
from repro.workloads import input_set_names

PAPER_NOSEP_SERIES = {
    "100-5%": 6.7,
    "100-10%": 9.7,
    "1K-5%": 11.4,
    "1K-10%": 24.2,
    "10K-5%": 87.4,
    "10K-10%": 180.4,
}
PAPER_2X32_SERIES = {
    "100-5%": 1.7,
    "100-10%": 1.8,
    "1K-5%": 1.2,
    "1K-10%": 1.1,
    "10K-5%": 1.0,
    "10K-10%": 1.0,
}


def test_fig11(measurements, report_table, benchmark):
    rows = []
    nosep_series = {}
    two32_series = {}
    two32_accel_series = {}
    for name in input_set_names():
        m = measurements[name]
        base = m.accel_bt_sep_total  # 1-64PS [Sep] = 1
        nosep = base / m.accel_bt_nosep_total
        two32 = base / m.accel_bt_2x32_sep_total
        # Accelerator-side-only ratio (excludes the common CPU backtrace):
        # this is where the paper's 1.7x for short reads lives.
        two32_accel = m.accel_bt_nosep_accel / m.extras["accel_bt_2x32_accel"]
        nosep_series[name] = nosep
        two32_series[name] = two32
        two32_accel_series[name] = two32_accel
        rows.append(
            [
                name,
                1.0,
                round(two32, 2),
                PAPER_2X32_SERIES[name],
                round(nosep, 1),
                PAPER_NOSEP_SERIES[name],
                round(two32_accel, 2),
            ]
        )

    write_csv(
        "benchmarks/results/fig11_configs.csv",
        ["input_set", "sep_1x64", "sep_2x32", "paper_2x32", "nosep_1x64",
         "paper_nosep", "accel_only_2x32"],
        rows,
    )
    report_table(
        format_comparison(
            [
                "Input set",
                "1-64PS[Sep]",
                "2-32PS[Sep]",
                "paper",
                "1-64PS[NoSep]",
                "paper",
                "2-32 accel-only",
            ],
            rows,
            title="Figure 11 — configuration comparison (backtrace on, "
            "normalised to 1-64PS [Sep])",
            note="end-to-end [Sep] ratios are dominated by the CPU "
            "separation cost; the accel-only column isolates the "
            "aligner-count effect the paper's short-read 1.7x reflects",
        )
    )

    # Shape assertions.
    names = input_set_names()
    # 1. NoSep wins everywhere, increasingly with read length.
    assert all(nosep_series[n] > 1.5 for n in names)
    assert nosep_series["10K-10%"] > nosep_series["1K-10%"] > nosep_series["100-10%"]
    assert nosep_series["10K-5%"] > nosep_series["1K-5%"] > nosep_series["100-5%"]
    # 2. NoSep magnitudes within a 3x band of the figure's values.
    for n in names:
        ratio = nosep_series[n] / PAPER_NOSEP_SERIES[n]
        assert 1 / 3 < ratio < 3, (n, nosep_series[n])
    # 3. On the accelerator side, two 32-PS Aligners beat one 64-PS
    #    Aligner for short reads (idle sections) and tie for long reads.
    assert two32_accel_series["100-5%"] > 1.3
    assert two32_accel_series["100-10%"] > 1.3
    assert 0.7 < two32_accel_series["10K-10%"] < 1.25
    # 4. End-to-end, both [Sep] configurations are within noise of each
    #    other (the separation step dominates both).
    for n in names:
        assert 0.8 < two32_series[n] < 2.2, (n, two32_series[n])

    # Wall-clock benchmark: the CPU backtrace (no separation) on a
    # short-read stream.
    from repro.soc import Soc
    from repro.wfasic import CpuBacktracer, WfasicConfig
    from repro.workloads import make_input_set

    pairs = make_input_set("100-10%", 8)
    soc = Soc(WfasicConfig.paper_default(backtrace=True))
    soc.run_accelerated(pairs, backtrace=True, separate=False)
    stream = soc.driver.result_stream()
    seqs = {p.pair_id: (p.pattern, p.text) for p in pairs}
    tracer = CpuBacktracer(soc.config)
    benchmark(lambda: tracer.process(stream, seqs, separate=False))
