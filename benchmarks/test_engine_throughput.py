"""Serial vs parallel batch-engine throughput.

Two measurements on the software serving layer:

* **Serving mix** — a realistic request stream (each unique pair
  requested several times, as production frontends see from repeated
  queries and retries).  The engine with >= 2 workers, coalescing and the
  LRU cache must beat the pre-engine serial path (a plain per-pair
  aligner loop, exactly what ``repro.cli align --engine cpu-*`` did
  before the engine existed).  This is the PR's acceptance measurement.
* **Unique-pair scaling** — all-distinct pairs, engine at 1 vs 2
  workers.  This isolates pure process parallelism; the speedup is
  bounded by the machine's core count (on a single-core runner it is
  ~1x and is reported, not asserted).
"""

from __future__ import annotations

import os
import time

from repro.align import DEFAULT_PENALTIES, WfaAligner
from repro.engine import BatchAlignmentEngine, EngineConfig
from repro.reporting import format_table
from repro.workloads import PairGenerator

#: Requests in the serving mix (>= 200 per the acceptance criterion).
NUM_REQUESTS = int(os.environ.get("REPRO_ENGINE_BENCH_REQUESTS", "240"))
UNIQUE_PAIRS = NUM_REQUESTS // 4
READ_LEN = 150
ERROR_RATE = 0.10


def _serving_mix() -> list:
    gen = PairGenerator(length=READ_LEN, error_rate=ERROR_RATE, seed=7)
    unique = gen.batch(UNIQUE_PAIRS)
    return [unique[i % UNIQUE_PAIRS] for i in range(NUM_REQUESTS)]


def _serial_loop(pairs) -> tuple[float, list[int]]:
    """The pre-engine path: one process, one aligner call per request."""
    aligner = WfaAligner(DEFAULT_PENALTIES, keep_backtrace=False)
    start = time.perf_counter()
    scores = [aligner.align(p.pattern, p.text).score for p in pairs]
    return time.perf_counter() - start, scores


def test_engine_beats_serial_on_serving_mix(report_table):
    requests = _serving_mix()
    serial_elapsed, serial_scores = _serial_loop(requests)

    config = EngineConfig(
        backend="scalar", workers=2, chunk_size=16, cache_size=4096
    )
    with BatchAlignmentEngine(config) as engine:
        result = engine.align_batch(requests)

    assert result.scores == serial_scores
    rep = result.report
    rows = [
        ["serial loop (pre-engine)", f"{serial_elapsed:.3f}",
         f"{NUM_REQUESTS / serial_elapsed:.0f}", "-", "-"],
        [f"engine ({rep.workers} workers + cache)",
         f"{rep.elapsed_seconds:.3f}", f"{rep.pairs_per_second:.0f}",
         f"{(rep.cache_hits + rep.coalesced) / rep.num_pairs:.0%}",
         f"{rep.worker_utilisation:.0%}"],
        ["speedup", f"{serial_elapsed / rep.elapsed_seconds:.2f}x", "", "", ""],
    ]
    report_table(format_table(
        ["path", "seconds", "pairs/s", "dup served", "worker util"],
        rows,
        title=f"Engine serving mix: {NUM_REQUESTS} requests "
              f"({UNIQUE_PAIRS} unique, {READ_LEN} bp, "
              f"{ERROR_RATE:.0%} error, scalar backend)",
    ))
    assert rep.elapsed_seconds < serial_elapsed, (
        f"engine ({rep.elapsed_seconds:.3f}s) did not beat the serial "
        f"path ({serial_elapsed:.3f}s)"
    )


def test_unique_pair_scaling(report_table):
    gen = PairGenerator(length=READ_LEN, error_rate=ERROR_RATE, seed=11)
    pairs = gen.batch(max(200, NUM_REQUESTS) // 2)

    timings = {}
    scores = {}
    for workers in (1, 2):
        config = EngineConfig(
            backend="scalar", workers=workers, chunk_size=16, cache_size=0
        )
        with BatchAlignmentEngine(config) as engine:
            result = engine.align_batch(pairs)
        timings[workers] = result.report.elapsed_seconds
        scores[workers] = result.scores

    assert scores[1] == scores[2]
    cores = os.cpu_count() or 1
    rows = [
        ["1 worker (in-process)", f"{timings[1]:.3f}",
         f"{len(pairs) / timings[1]:.0f}"],
        ["2 workers (pool)", f"{timings[2]:.3f}",
         f"{len(pairs) / timings[2]:.0f}"],
        [f"speedup (on {cores} core(s))",
         f"{timings[1] / timings[2]:.2f}x", ""],
    ]
    report_table(format_table(
        ["engine", "seconds", "pairs/s"],
        rows,
        title=f"Engine unique-pair scaling: {len(pairs)} distinct pairs "
              f"({READ_LEN} bp, {ERROR_RATE:.0%} error, scalar backend)",
    ))
    # Pure process parallelism is core-count bound; only sanity-check
    # that the pool path is not pathologically slower than in-process.
    assert timings[2] < timings[1] * (3.0 if cores == 1 else 1.2)
