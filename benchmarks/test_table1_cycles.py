"""Table 1 — per-pair reading vs alignment cycles and Eq. 7's MaxAligners.

Regenerates the paper's Table 1 for all six input sets: the cycles the
DMA/Extractor path needs to stream one pair in, the cycles one Aligner
(64 parallel sections, backtrace off) needs to align it, and the maximum
number of Aligners that the input path can keep busy (Eq. 7).
"""

import statistics

import pytest

from repro.wfasic import WfasicConfig, WfasicAccelerator, max_efficient_aligners
from repro.wfasic.packets import encode_input_image, round_up_read_len
from repro.workloads import input_set_names, make_input_set
from repro.reporting import format_comparison

#: The paper's Table 1, for side-by-side comparison.
PAPER_TABLE1 = {
    "100-5%": (214, 75, 4),
    "100-10%": (327, 75, 6),
    "1K-5%": (2541, 376, 8),
    "1K-10%": (8461, 376, 24),
    "10K-5%": (278083, 3420, 83),
    "10K-10%": (937630, 3420, 276),
}


def test_table1(measurements, report_table, benchmark):
    rows = []
    for name in input_set_names():
        m = measurements[name]
        align = int(statistics.mean(m.align_cycles_nbt))
        max_al = max_efficient_aligners(align, m.reading_cycles)
        p_align, p_read, p_max = PAPER_TABLE1[name]
        rows.append(
            [
                name,
                align,
                p_align,
                m.reading_cycles,
                p_read,
                max_al,
                p_max,
            ]
        )

    report_table(
        format_comparison(
            [
                "Input",
                "Align cyc",
                "paper",
                "Read cyc",
                "paper",
                "MaxAligners",
                "paper",
            ],
            rows,
            title="Table 1 — alignment/reading cycles per pair and Eq. 7",
            note="alignment cycles depend on the synthetic data realisation; "
            "reading cycles are calibrated to <2%",
        )
    )

    # Assertions: reading cycles are tight; alignment cycles and the Eq. 7
    # knee must be within the documented 2x band with the paper's ordering.
    by_name = {r[0]: r for r in rows}
    for name in input_set_names():
        _, align, p_align, read, p_read, max_al, p_max = by_name[name]
        assert abs(read - p_read) / p_read < 0.03
        assert 0.4 < align / p_align < 2.5
        assert 0.4 < max_al / p_max < 2.5
    # Monotonic structure: longer reads and higher error rates cost more.
    order = [by_name[n][1] for n in input_set_names()]
    assert order == sorted(order)

    # Wall-clock benchmark: one full accelerator batch on the 100-10% set.
    pairs = make_input_set("100-10%", 8)
    mrl = round_up_read_len(max(p.max_length for p in pairs))
    image = encode_input_image(pairs, mrl)
    accel = WfasicAccelerator(WfasicConfig.paper_default(backtrace=False))
    result = benchmark(lambda: accel.run_image(image, mrl))
    assert all(r.success for r in result.runs)


@pytest.mark.parametrize("name", ["100-5%", "100-10%"])
def test_reading_cycles_exact_for_short_reads(measurements, name, benchmark):
    # 100 bp inputs pad to 112 bases -> 17 beats -> 5 bursts -> 75 cycles,
    # the paper's exact number.
    assert measurements[name].reading_cycles == 75
    from repro.wfasic import read_pair_cycles

    assert benchmark(lambda: read_pair_cycles(112)) == 75
