"""Fleet scaling: multi-chip speedup and planner prediction accuracy.

The PR 9 acceptance measurements:

* a **4-chip fleet** must deliver at least **3x** the single-chip
  throughput on a mixed-length workload (short 100 bp reads plus 1 kbp
  reads — the shape that punishes naive routing, since a 1 kbp batch
  costs ~10x a short one);
* the **capacity planner's predicted rate** must land within **25 %**
  of the rate its own verification fleet actually simulates.

Results land machine-readably in ``benchmarks/results/BENCH_pr9.json``
(mirrored to the repository root) via the ``bench_json_pr9`` fixture.
"""

from __future__ import annotations

from dataclasses import replace

from repro.fleet import FleetBudget, FleetConfig, FleetScheduler, plan_capacity
from repro.reporting import format_table
from repro.wfasic import WfasicConfig
from repro.workloads import make_input_set

#: The acceptance bar for 4 chips (75 % parallel efficiency).
MIN_SPEEDUP_4CHIP = 3.0

#: Planner prediction must land within this fraction of simulation.
MAX_PREDICTION_ERROR = 0.25

#: One paper-shaped chip, long-read capable so the mixed workload routes.
CHIP = WfasicConfig(
    num_aligners=1,
    parallel_sections=64,
    max_read_len=1600,
    k_max=3998,
    backtrace=False,
)


def _mixed_workload():
    """40 short + 8 long pairs with re-assigned, unique pair ids."""
    short = make_input_set("100-10%", 40)
    long = make_input_set("1K-5%", 8)
    pairs = short + long
    return [replace(p, pair_id=i) for i, p in enumerate(pairs)]


def test_four_chip_fleet_scales_3x(report_table, bench_json_pr9):
    pairs = _mixed_workload()
    rows = []
    rates: dict[int, float] = {}
    for chips in (1, 2, 4):
        result = FleetScheduler(
            FleetConfig.uniform(chips, CHIP, batch_pairs=2)
        ).run(pairs)
        assert result.failed_pairs == 0, f"{chips} chips: failures"
        rates[chips] = result.pairs_per_second
        rows.append(
            [
                chips,
                result.makespan_cycles,
                f"{result.pairs_per_second:,.0f}",
                f"{result.pairs_per_second / rates[1]:.2f}x",
                f"{result.total_soc_area_mm2:.2f}",
                f"{result.energy_per_pair_j * 1e9:.1f}",
            ]
        )

    speedup_2 = rates[2] / rates[1]
    speedup_4 = rates[4] / rates[1]
    report_table(
        format_table(
            ["chips", "makespan (cycles)", "pairs/s", "speedup",
             "SoC mm2", "nJ/pair"],
            rows,
            title="=== Fleet scaling, mixed 100bp+1kbp workload "
            f"({len(pairs)} pairs, batches of 2) ===",
        )
    )
    bench_json_pr9(
        "fleet_scaling",
        {
            "workload": {"short_pairs": 40, "long_pairs": 8},
            "chip": "1x64PS",
            "batch_pairs": 2,
            "pairs_per_second": {str(c): rates[c] for c in rates},
            "speedup_2chip": speedup_2,
            "speedup_4chip": speedup_4,
            "min_speedup_4chip": MIN_SPEEDUP_4CHIP,
        },
    )
    assert speedup_4 >= MIN_SPEEDUP_4CHIP, (
        f"4-chip speedup {speedup_4:.2f}x below the "
        f"{MIN_SPEEDUP_4CHIP}x acceptance bar"
    )


def test_planner_prediction_within_25pct(report_table, bench_json_pr9):
    budget = FleetBudget(pairs_per_sec=6e6, area_mm2=100.0, power_w=10.0)
    plan = plan_capacity(budget)
    assert plan.feasible, "the acceptance budget must be plannable"
    predicted = plan.predicted_pairs_per_second
    simulated = plan.simulated_pairs_per_second
    error = abs(predicted - simulated) / simulated

    report_table(
        format_table(
            ["chips", "config", "predicted pairs/s", "simulated pairs/s",
             "error"],
            [[
                plan.chips,
                f"{plan.config.num_aligners}x{plan.config.parallel_sections}PS",
                f"{predicted:,.0f}",
                f"{simulated:,.0f}",
                f"{error:.1%}",
            ]],
            title="=== Planner prediction vs simulation "
            f"(target {budget.pairs_per_sec:,.0f} pairs/s) ===",
        )
    )
    bench_json_pr9(
        "planner_accuracy",
        {
            "budget": {
                "pairs_per_sec": budget.pairs_per_sec,
                "area_mm2": budget.area_mm2,
                "power_w": budget.power_w,
            },
            "chips": plan.chips,
            "config": (
                f"{plan.config.num_aligners}x"
                f"{plan.config.parallel_sections}PS"
            ),
            "predicted_pairs_per_second": predicted,
            "simulated_pairs_per_second": simulated,
            "relative_error": error,
            "max_relative_error": MAX_PREDICTION_ERROR,
        },
    )
    assert error <= MAX_PREDICTION_ERROR, (
        f"planner prediction off by {error:.1%} "
        f"(> {MAX_PREDICTION_ERROR:.0%})"
    )
