"""Figure 10 — scalability with the number of Aligners (backtrace off).

For each input set, the batch makespan with 1..10 Aligners is computed
under the §4.1 schedule (reads serialise on the input path; alignments
run in parallel), using the measured per-pair costs.  The paper's
findings to reproduce:

* long reads scale almost perfectly (9.87x / 9.67x at 10 Aligners for
  10K-10% / 10K-5%),
* short-read scaling saturates at Eq. 7's MaxAligners because the
  design becomes bound on the accelerator-memory bandwidth.
"""

import statistics

from repro.reporting import format_comparison, write_csv
from repro.wfasic import max_efficient_aligners, schedule_makespan
from repro.workloads import input_set_names

ALIGNER_SWEEP = list(range(1, 11))
#: Batch size used for the schedule sweep: measured per-pair costs are
#: tiled to this many jobs so ten Aligners have work to share.
SCHEDULE_JOBS = 40

PAPER_10_ALIGNER_SPEEDUPS = {"10K-5%": 9.67, "10K-10%": 9.87}


def _tile(values: list[int], count: int) -> list[int]:
    return [values[i % len(values)] for i in range(count)]


def test_fig10(measurements, report_table, benchmark):
    table_rows = []
    speedups_by_set: dict[str, list[float]] = {}
    for name in input_set_names():
        m = measurements[name]
        jobs = _tile(m.align_cycles_nbt, SCHEDULE_JOBS)
        base = schedule_makespan(m.reading_cycles, jobs, 1)
        speedups = [
            base / schedule_makespan(m.reading_cycles, jobs, a)
            for a in ALIGNER_SWEEP
        ]
        speedups_by_set[name] = speedups
        table_rows.append([name] + [round(s, 2) for s in speedups])

    write_csv(
        "benchmarks/results/fig10_scalability.csv",
        ["input_set"] + [f"aligners_{a}" for a in ALIGNER_SWEEP],
        table_rows,
    )
    report_table(
        format_comparison(
            ["Input set"] + [f"{a}A" for a in ALIGNER_SWEEP],
            table_rows,
            title="Figure 10 — speedup vs number of Aligners (over 1 Aligner)",
            note="paper: 10K-10% reaches 9.87x and 10K-5% 9.67x at 10 "
            "Aligners; short reads saturate at Eq. 7's MaxAligners",
        )
    )

    # Shape assertions.
    for name, speedups in speedups_by_set.items():
        # Monotone non-decreasing in the aligner count.
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:])), name
        assert speedups[0] == 1.0

    # Long reads scale nearly perfectly at 10 Aligners.
    for name, paper in PAPER_10_ALIGNER_SPEEDUPS.items():
        measured = speedups_by_set[name][-1]
        assert measured > 8.5, (name, measured)
        assert abs(measured - paper) < 1.5, (name, measured)

    # Short reads saturate around Eq. 7's knee: the speedup beyond
    # MaxAligners gains < 15% more.
    for name in ("100-5%", "100-10%"):
        m = measurements[name]
        knee = max_efficient_aligners(
            int(statistics.mean(m.align_cycles_nbt)), m.reading_cycles
        )
        speedups = speedups_by_set[name]
        if knee < len(speedups):
            assert speedups[-1] < speedups[knee - 1] * 1.15, name
        # And short reads never reach the long-read scaling.
        assert speedups[-1] < speedups_by_set["10K-10%"][-1]

    # Combined headline: speedup over the CPU scalar code with 10
    # Aligners (paper: 10 621x at 10K-10%).
    m = measurements["10K-10%"]
    jobs = _tile(m.align_cycles_nbt, SCHEDULE_JOBS)
    t10 = schedule_makespan(m.reading_cycles, jobs, 10)
    cpu = m.cpu_scalar_cycles * (SCHEDULE_JOBS / m.num_pairs)
    combined = cpu / t10
    report_table(
        format_comparison(
            ["metric", "measured", "paper"],
            [["10K-10% speedup vs CPU scalar @10 Aligners", round(combined), 10621]],
            title="Figure 10 headline",
        )
    )
    assert combined > 3000

    # Wall-clock benchmark: the schedule sweep itself.
    benchmark(
        lambda: [
            schedule_makespan(m.reading_cycles, jobs, a) for a in ALIGNER_SWEEP
        ]
    )
