"""Table 2 — GCUPS, area and GCUPS/mm² across platforms at 10 kbp.

The four literature rows (GACT, EPYC x2, WFA-GPU) are the published
numbers the paper itself tabulates; the two WFAsic rows are measured
here: cycle counts of the 10K-5% input scaled to the 1.1 GHz post-PnR
clock (§5.5), with the backtrace row adding the CPU backtrace time at
the Sargantana clock.
"""

from repro.metrics import (
    TABLE2_REFERENCE_ROWS,
    gcups_from_cycles,
    swg_equivalent_cells,
)
from repro.reporting import format_comparison
from repro.soc.cpu import SARGANTANA_FREQUENCY_HZ
from repro.wfasic import GF22_FREQUENCY_HZ, GF22_POWER_W, WfasicConfig, asic_report
from repro.workloads import make_input_set

PAPER_WFASIC_BT_GCUPS = 61.0
PAPER_WFASIC_NBT_GCUPS = 390.0
PAPER_WFASIC_AREA = 1.6


def test_table2(measurements, report_table, benchmark):
    m = measurements["10K-5%"]
    area = asic_report(WfasicConfig.paper_default()).total_area_mm2

    # Without backtrace: pure accelerator time at the ASIC clock.
    nbt_seconds = m.accel_nbt_total / GF22_FREQUENCY_HZ
    nbt_gcups = m.swg_cells / nbt_seconds / 1e9

    # With backtrace: accelerator at 1.1 GHz + CPU backtrace at 1.26 GHz
    # (no-separation method — the shipped single-Aligner configuration).
    bt_seconds = (
        m.accel_bt_nosep_accel / GF22_FREQUENCY_HZ
        + m.accel_bt_nosep_cpu / SARGANTANA_FREQUENCY_HZ
    )
    bt_gcups = m.swg_cells / bt_seconds / 1e9

    rows = []
    for ref in TABLE2_REFERENCE_ROWS:
        rows.append(
            [ref.platform, ref.gcups, ref.area_mm2, round(ref.gcups_per_mm2, 4), "paper"]
        )
    rows.append(
        ["WFAsic [With Backtrace]", round(bt_gcups, 1), round(area, 2),
         round(bt_gcups / area, 1), f"measured (paper {PAPER_WFASIC_BT_GCUPS})"]
    )
    rows.append(
        ["WFAsic [Without Backtrace]", round(nbt_gcups, 1), round(area, 2),
         round(nbt_gcups / area, 1), f"measured (paper {PAPER_WFASIC_NBT_GCUPS})"]
    )
    report_table(
        format_comparison(
            ["Platform/Design", "GCUPS", "Area mm2", "GCUPS/mm2", "source"],
            rows,
            title="Table 2 — GCUPS and area comparison @ 10 kbp",
            note="WFAsic rows measured on this simulator; others are the "
            "paper's cited literature values",
        )
    )

    # Shape assertions (who wins):
    # 1. WFAsic (both modes) beats every other platform on GCUPS/mm2.
    best_other = max(r.gcups_per_mm2 for r in TABLE2_REFERENCE_ROWS)
    assert bt_gcups / area > best_other
    assert nbt_gcups / area > best_other
    # 2. GACT keeps the highest absolute GCUPS (with its 50x area).
    assert nbt_gcups < 2129
    # 3. Magnitudes within the documented band of the paper's numbers.
    assert 0.3 < nbt_gcups / PAPER_WFASIC_NBT_GCUPS < 1.5
    assert 0.3 < bt_gcups / PAPER_WFASIC_BT_GCUPS < 3.0
    # 4. Backtrace costs throughput.
    assert bt_gcups < nbt_gcups

    # Wall-clock benchmark: the GCUPS computation itself is trivial; time
    # the area-model derivation it depends on.
    benchmark(lambda: asic_report(WfasicConfig.paper_default()))


def test_wfa_fpga_per_aligner_comparison(measurements, report_table, benchmark):
    """§5.5's WFA-FPGA aside: GCUPS per Aligner (not in Table 2 because
    WFA-FPGA cannot run 10 kbp reads; compared at its own terms)."""
    m = measurements["10K-5%"]
    # The paper's 61 GCUPS/Aligner is the Table 2 with-backtrace figure.
    bt_seconds = (
        m.accel_bt_nosep_accel / GF22_FREQUENCY_HZ
        + m.accel_bt_nosep_cpu / SARGANTANA_FREQUENCY_HZ
    )
    per_aligner_gcups = m.swg_cells / bt_seconds / 1e9
    report_table(
        format_comparison(
            ["Design", "GCUPS per Aligner", "source"],
            [
                ["WFA-FPGA (40+ aligners, short reads only)", 31.3, "paper"],
                ["WFAsic (1 Aligner, paper, with BT)", 61.0, "paper"],
                ["WFAsic (1 Aligner, measured, with BT)", round(per_aligner_gcups, 1), "this repo"],
            ],
            title="§5.5 — per-Aligner GCUPS vs the WFA-FPGA",
        )
    )
    assert per_aligner_gcups > 31.3  # WFAsic's per-Aligner win must hold
    benchmark(
        lambda: gcups_from_cycles(m.swg_cells, m.accel_nbt_total, GF22_FREQUENCY_HZ)
    )


def test_asic_physical_summary(report_table, benchmark):
    """§5.2 physicals: macros, memory, area, frequency, power."""
    rep = benchmark(lambda: asic_report(WfasicConfig.paper_default()))
    rows = [
        ["memory macros", rep.inventory.total_macros, 260],
        ["on-chip memory (MB)", round(rep.memory_mb, 3), 0.48],
        ["area (mm2)", round(rep.total_area_mm2, 2), 1.6],
        ["frequency (GHz)", rep.frequency_hz / 1e9, 1.1],
        ["power (mW)", round(rep.power_w * 1000), 312],
        ["SoC area with Sargantana (mm2)", round(rep.soc_area_mm2, 2), "~3"],
    ]
    report_table(
        format_comparison(
            ["quantity", "model", "paper"],
            rows,
            title="§5.2 — ASIC implementation summary (Fig. 8 context)",
            note="macro count and memory are derived from the architecture; "
            "frequency/power carried as documented constants",
        )
    )
    assert rep.inventory.total_macros == 260


def test_energy_per_alignment(measurements, report_table, benchmark):
    """§1's portability claim: energy per 10 kbp alignment per platform."""
    from repro.metrics import TABLE_ENERGY_ROWS

    m = measurements["10K-5%"]
    nbt_gcups = m.swg_cells / (m.accel_nbt_total / GF22_FREQUENCY_HZ) / 1e9
    bt_seconds = (
        m.accel_bt_nosep_accel / GF22_FREQUENCY_HZ
        + m.accel_bt_nosep_cpu / SARGANTANA_FREQUENCY_HZ
    )
    bt_gcups = m.swg_cells / bt_seconds / 1e9
    rows = TABLE_ENERGY_ROWS(bt_gcups, nbt_gcups, GF22_POWER_W)
    table = [
        [r.platform, r.power_w, round(r.gcups, 1),
         f"{r.joules_per_alignment * 1e6:.1f}",
         round(r.gcups_per_watt, 2)]
        for r in rows
    ]
    report_table(
        format_comparison(
            ["Platform", "Power W", "GCUPS", "uJ/alignment", "GCUPS/W"],
            table,
            title="Energy — one 10 kbp alignment per platform (§1 portability)",
            note="WFAsic power is the paper's 312 mW; competitor powers are "
            "published TDP/board figures",
        )
    )
    wfasic = [r for r in rows if r.platform.startswith("WFAsic")]
    others = {r.platform: r for r in rows if not r.platform.startswith("WFAsic")}
    # WFAsic wins GCUPS/W against every platform (the other ASIC, GACT,
    # is the only one in the same league) and beats the programmable
    # platforms (CPU/GPU) by orders of magnitude.
    assert min(w.gcups_per_watt for w in wfasic) > max(
        o.gcups_per_watt for o in others.values()
    )
    gpu = others["WFA-GPU [NVIDIA GeForce 3080]"]
    assert min(w.gcups_per_watt for w in wfasic) > 100 * gpu.gcups_per_watt
    benchmark(lambda: TABLE_ENERGY_ROWS(bt_gcups, nbt_gcups, GF22_POWER_W))
