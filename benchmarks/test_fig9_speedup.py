"""Figure 9 — WFAsic speedup over the CPU scalar WFA, per input set.

Three series, exactly as the figure plots them:

* WFAsic with backtrace disabled vs CPU scalar (paper: 143x .. 1076x),
* WFAsic with backtrace enabled vs CPU scalar (paper: 2.8x .. 344x),
* the CPU vector (RVV) code vs the CPU scalar code.

Speedups are cycle ratios, the FPGA-prototype measurement of §5.3.
"""

from repro.reporting import format_comparison, write_csv
from repro.soc import Soc
from repro.wfasic import WfasicConfig
from repro.workloads import input_set_names, make_input_set

#: The endpoints the paper states in §5.3 (full per-set values are only
#: plotted, not tabulated).
PAPER_NOBT_RANGE = (143.0, 1076.0)
PAPER_BT_RANGE = (2.8, 344.0)


def test_fig9(measurements, report_table, benchmark):
    rows = []
    series_nobt = []
    series_bt = []
    series_vec = []
    for name in input_set_names():
        m = measurements[name]
        s_nobt = m.cpu_scalar_cycles / m.accel_nbt_total
        s_bt = m.cpu_scalar_cycles / m.accel_bt_nosep_total
        s_vec = m.cpu_scalar_cycles / m.cpu_vector_cycles
        series_nobt.append(s_nobt)
        series_bt.append(s_bt)
        series_vec.append(s_vec)
        rows.append([name, round(s_nobt, 1), round(s_bt, 1), round(s_vec, 2)])

    write_csv(
        "benchmarks/results/fig9_speedups.csv",
        ["input_set", "wfasic_nobt_x", "wfasic_bt_x", "cpu_vector_x"],
        rows,
    )
    report_table(
        format_comparison(
            ["Input set", "WFAsic noBT (x)", "WFAsic BT (x)", "CPU vector (x)"],
            rows,
            title="Figure 9 — speedup over the CPU scalar WFA",
            note=f"paper ranges: noBT {PAPER_NOBT_RANGE[0]}-{PAPER_NOBT_RANGE[1]}x, "
            f"BT {PAPER_BT_RANGE[0]}-{PAPER_BT_RANGE[1]}x",
        )
    )

    # Shape assertions.
    # 1. Speedups grow with read length (per error rate).
    for lo, hi in ((0, 2), (2, 4), (1, 3), (3, 5)):
        assert series_nobt[hi] > series_nobt[lo]
        assert series_bt[hi] > series_bt[lo]
    # 2. The no-backtrace series dominates the backtrace series everywhere.
    assert all(n > b for n, b in zip(series_nobt, series_bt))
    # 3. Both series land inside a 2x band of the paper's stated range.
    assert PAPER_NOBT_RANGE[0] / 2 < min(series_nobt) < PAPER_NOBT_RANGE[0] * 2
    assert PAPER_NOBT_RANGE[1] / 2 < max(series_nobt) < PAPER_NOBT_RANGE[1] * 2
    assert PAPER_BT_RANGE[0] / 2 < min(series_bt) < PAPER_BT_RANGE[0] * 2
    assert PAPER_BT_RANGE[1] / 2 < max(series_bt) < PAPER_BT_RANGE[1] * 2
    # 4. The vector code helps but is nowhere near the accelerator.
    assert all(1.5 < v < 16 for v in series_vec)
    assert all(v < n for v, n in zip(series_vec, series_nobt))

    # Wall-clock benchmark: the CPU-flow model on a short-read set.
    pairs = make_input_set("100-10%", 8)
    soc = Soc(WfasicConfig.paper_default(backtrace=False))
    benchmark(lambda: soc.run_cpu(pairs, vector=False))
