"""Long-read banding: memory frugality at equal scores.

The PR 7 acceptance measurement: on ONT-like long-read pairs
(``PairGenerator.long_read``), the banded :class:`BatchedWfaAligner`
must reproduce the exact scores while cutting the per-pair peak
wavefront footprint (``WfaWorkCounters.peak_wavefront_bytes``) by at
least **5x**.  The fast workload runs 10 kbp reads at 2 % divergence;
the ``slow``-marked one pushes to 50 kbp at 1 % (the long-read smoke
job in CI runs only the fast one).

Results land machine-readably in ``benchmarks/results/BENCH_pr7.json``
(mirrored to the repository root) via the ``bench_json_pr7`` fixture.
"""

from __future__ import annotations

import time

import pytest

from repro.align import BatchedWfaAligner
from repro.reporting import format_table
from repro.workloads import PairGenerator

#: The adaptive band follows the furthest-reaching diagonal, so ~21x
#: the max indel run is ample head-room for a 1-2 % ONT error profile.
BAND_WIDTH = 128

#: The acceptance bar: exact-peak / banded-peak, per pair.
MIN_MEMORY_REDUCTION = 5.0

WORKLOADS = (
    pytest.param(
        {"read_length": 10_000, "error_rate": 0.02, "num_pairs": 4, "seed": 71},
        id="10kbp",
    ),
    pytest.param(
        {"read_length": 50_000, "error_rate": 0.01, "num_pairs": 2, "seed": 72},
        id="50kbp",
        marks=pytest.mark.slow,
    ),
)


def _workload(spec):
    gen = PairGenerator.long_read(
        length=spec["read_length"],
        error_rate=spec["error_rate"],
        seed=spec["seed"],
    )
    return [(p.pattern, p.text) for p in gen.batch(spec["num_pairs"])]


def _timed_batch(aligner, pairs):
    start = time.perf_counter()
    results = aligner.align_batch(pairs)
    return results, time.perf_counter() - start


@pytest.mark.parametrize("spec", WORKLOADS)
def test_banded_memory_reduction_at_equal_scores(
    spec, report_table, bench_json_pr7
):
    pairs = _workload(spec)
    exact, exact_s = _timed_batch(BatchedWfaAligner(), pairs)
    banded, banded_s = _timed_batch(
        BatchedWfaAligner(band_width=BAND_WIDTH), pairs
    )

    # Equal scores: the adaptive band held the optimal path on every
    # pair of this workload (and no pair needed the exact fallback).
    assert all(b.reached_end for b in banded)
    assert [b.score for b in banded] == [e.score for e in exact]

    reductions = [
        e.work.peak_wavefront_bytes / b.work.peak_wavefront_bytes
        for b, e in zip(banded, exact)
    ]
    worst = min(reductions)
    assert worst >= MIN_MEMORY_REDUCTION, (
        f"{spec['read_length']}bp: worst per-pair peak-memory reduction "
        f"is {worst:.1f}x (bar: {MIN_MEMORY_REDUCTION:.0f}x)"
    )

    label = f"{spec['read_length'] // 1000}kbp"
    exact_peak = max(e.work.peak_wavefront_bytes for e in exact)
    banded_peak = max(b.work.peak_wavefront_bytes for b in banded)
    report_table(format_table(
        ["workload", "score parity", "peak exact", "peak banded",
         "reduction", "banded pairs/s"],
        [[
            label,
            f"{len(pairs)}/{len(pairs)}",
            f"{exact_peak / 1e6:.1f} MB",
            f"{banded_peak / 1e6:.2f} MB",
            f"{worst:.1f}x",
            f"{len(pairs) / banded_s:.2f}",
        ]],
        title=f"Long-read banding (band={BAND_WIDTH}, backtrace off)",
    ))
    bench_json_pr7(f"longread_banding_{label}", {
        "workload": dict(spec),
        "band_width": BAND_WIDTH,
        "bar": MIN_MEMORY_REDUCTION,
        "scores_equal": True,
        "peak_wavefront_bytes": {
            "exact": [e.work.peak_wavefront_bytes for e in exact],
            "banded": [b.work.peak_wavefront_bytes for b in banded],
            "worst_reduction": round(worst, 2),
        },
        "elapsed_seconds": {
            "exact": round(exact_s, 3),
            "banded": round(banded_s, 3),
        },
        "pairs_per_second": {
            "exact": round(len(pairs) / exact_s, 3),
            "banded": round(len(pairs) / banded_s, 3),
        },
    })
