"""Cost of the observability layer on the batch-engine hot path.

The metrics registry publishes on every batch unconditionally (plain
dict updates), while tracing is opt-in.  This bench measures both:

* **registry-only** vs **fully-observed** (tracer installed, metrics
  snapshot + run manifest written) wall time on the same workload — the
  fully-observed run must stay within ``MAX_OVERHEAD_RATIO`` of the
  plain run (a loose bar: the point is to catch an accidental O(pairs²)
  regression in the publish path, not to chase noise);
* the standalone cost of one registry snapshot and one manifest
  validation, amortised per batch.

Results go to ``BENCH_pr4.json`` (mirrored at the repository root) with
a schema-validated run manifest written alongside, so this bench
exercises the full artefact path it measures.
"""

from __future__ import annotations

import os
import time

from repro.engine import BatchAlignmentEngine, EngineConfig
from repro.obs import (
    MetricsRegistry,
    RunManifest,
    Tracer,
    get_registry,
    install_tracer,
    set_registry,
    validate_trace_document,
)
from repro.reporting import format_table
from repro.workloads import PairGenerator

from .conftest import RESULTS_DIR

NUM_PAIRS = int(os.environ.get("REPRO_OBS_BENCH_PAIRS", "200"))
READ_LEN = 150
#: Fully-observed may cost at most this multiple of registry-only.
MAX_OVERHEAD_RATIO = 3.0
#: Repetitions per variant; the minimum is reported (noise floor).
REPEATS = 3


def _run_batch(pairs, *, tracer: Tracer | None) -> float:
    previous = install_tracer(tracer) if tracer is not None else None
    start = time.perf_counter()
    try:
        with BatchAlignmentEngine(
            EngineConfig(backend="batched", workers=1, cache_size=0)
        ) as engine:
            engine.align_batch(pairs)
    finally:
        if tracer is not None:
            install_tracer(previous)
    return time.perf_counter() - start


def test_observability_overhead(bench_json_pr4, report_table):
    pairs = PairGenerator(
        length=READ_LEN, error_rate=0.05, seed=7, max_text_length=READ_LEN
    ).batch(NUM_PAIRS)

    plain = observed = float("inf")
    tracer = None
    for _ in range(REPEATS):
        set_registry(MetricsRegistry())
        plain = min(plain, _run_batch(pairs, tracer=None))
        set_registry(MetricsRegistry())
        tracer = Tracer()
        observed = min(observed, _run_batch(pairs, tracer=tracer))
    assert tracer is not None
    validate_trace_document(tracer.to_dict())

    # Standalone artefact costs, measured on the final run's registry.
    registry = get_registry()
    snap_start = time.perf_counter()
    snapshot = registry.snapshot()
    snapshot_seconds = time.perf_counter() - snap_start

    manifest = RunManifest.for_run(
        command=["pytest", "benchmarks/test_observability_overhead.py"],
        config={"backend": "batched", "num_pairs": NUM_PAIRS, "read_len": READ_LEN},
        pairs=pairs,
        dataset_source=f"generated:length={READ_LEN},n={NUM_PAIRS},seed=7",
        seed=7,
        metrics=snapshot,
    )
    manifest_start = time.perf_counter()
    doc = manifest.write(RESULTS_DIR / "BENCH_pr4.manifest.json")
    manifest_seconds = time.perf_counter() - manifest_start

    ratio = observed / plain if plain > 0 else 1.0
    rows = [
        ["registry only (s)", f"{plain:.4f}"],
        ["tracer + snapshot + manifest (s)", f"{observed:.4f}"],
        ["overhead ratio", f"{ratio:.2f}x (bar {MAX_OVERHEAD_RATIO:.1f}x)"],
        ["registry snapshot (s)", f"{snapshot_seconds:.5f}"],
        ["manifest validate+write (s)", f"{manifest_seconds:.5f}"],
        ["trace events", len(tracer.events)],
    ]
    report_table(
        format_table(
            ["quantity", "value"],
            rows,
            title=f"Observability overhead ({NUM_PAIRS} x {READ_LEN} bp, batched)",
        )
    )
    bench_json_pr4(
        "observability_overhead",
        {
            "num_pairs": NUM_PAIRS,
            "read_len": READ_LEN,
            "registry_only_seconds": plain,
            "fully_observed_seconds": observed,
            "overhead_ratio": ratio,
            "snapshot_seconds": snapshot_seconds,
            "manifest_seconds": manifest_seconds,
            "trace_events": len(tracer.events),
            "dataset_fingerprint": doc["run"]["dataset"]["fingerprint"],
        },
    )
    assert ratio <= MAX_OVERHEAD_RATIO, (
        f"observability overhead {ratio:.2f}x exceeds {MAX_OVERHEAD_RATIO}x"
    )
