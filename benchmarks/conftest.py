"""Shared measurement machinery for the paper-reproduction benchmarks.

Every table/figure bench draws from one cached measurement per input set
(the accelerator and CPU flows are deterministic, so re-running them per
bench would only waste time).  Batch sizes are chosen so the whole bench
suite finishes in a few minutes; set ``REPRO_BENCH_PAIRS`` to scale all
sets up or down (the 10 kbp sets get max(1, PAIRS // 8) pairs).

Each bench prints its paper-style table (visible with ``pytest -s``) and
also appends it to ``benchmarks/results/benchmark_tables.txt`` so the
tables survive output capturing; EXPERIMENTS.md is written from that
file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import pytest

from repro.soc import Soc
from repro.wfasic import CpuBacktracer, WfasicConfig
from repro.workloads import input_set_names, make_input_set

RESULTS_DIR = Path(__file__).parent / "results"

#: Pairs per 100 bp / 1 kbp set (10 kbp sets use an eighth of this).
DEFAULT_PAIRS = int(os.environ.get("REPRO_BENCH_PAIRS", "16"))


def pairs_for(name: str) -> int:
    if name.startswith("10K"):
        return max(1, DEFAULT_PAIRS // 8)
    if name.startswith("1K"):
        return max(2, DEFAULT_PAIRS // 2)
    return DEFAULT_PAIRS


@dataclass
class SetMeasurement:
    """Everything the five experiments need about one input set."""

    name: str
    num_pairs: int
    max_read_len: int
    reading_cycles: int
    #: Per-pair alignment cycles, 1 Aligner x 64 PS, backtrace off.
    align_cycles_nbt: list[int]
    #: Batch makespan, 1 Aligner x 64 PS, backtrace off.
    accel_nbt_total: int
    #: Batch makespan + CPU backtrace, 1x64PS, backtrace on, no separation.
    accel_bt_nosep_total: int
    accel_bt_nosep_accel: int
    accel_bt_nosep_cpu: int
    #: Same accelerator batch, CPU backtrace with data separation.
    accel_bt_sep_total: int
    #: 2 Aligners x 32 PS, backtrace on, with separation.
    accel_bt_2x32_sep_total: int
    #: Software WFA on the Sargantana model.
    cpu_scalar_cycles: int
    cpu_vector_cycles: int
    #: SWG-equivalent DP cells of the whole batch (for GCUPS).
    swg_cells: int
    extras: dict = field(default_factory=dict)


def _measure(name: str) -> SetMeasurement:
    n = pairs_for(name)
    pairs = make_input_set(name, n)
    cells = sum(len(p.pattern) * len(p.text) for p in pairs)

    # -- no-backtrace accelerator flow (1 x 64 PS) -------------------------
    soc_n = Soc(WfasicConfig.paper_default(backtrace=False))
    acc_n = soc_n.run_accelerated(pairs, backtrace=False)
    assert all(acc_n.success.values()), f"{name}: unexpected failures"

    # -- CPU flows ----------------------------------------------------------
    cpu_scalar = soc_n.run_cpu(pairs, vector=False, backtrace=True)
    cpu_vector = soc_n.run_cpu(pairs, vector=True, backtrace=True)

    # -- backtrace-enabled flow, 1 x 64 PS ------------------------------------
    soc_b = Soc(WfasicConfig.paper_default(backtrace=True))
    acc_b = soc_b.run_accelerated(pairs, backtrace=True, separate=False)
    # Re-run only the CPU backtrace with data separation on the same
    # accelerator stream (the stream itself is identical for 1 Aligner).
    stream = soc_b.driver.result_stream()
    seqs = {p.pair_id: (p.pattern, p.text) for p in pairs}
    _, sep_work = CpuBacktracer(soc_b.config).process(stream, seqs, separate=True)
    sep_cpu = soc_b.cpu.backtrace_cycles(sep_work, num_alignments=n)
    accel_bt_sep_total = acc_b.accelerator_cycles + sep_cpu

    # -- backtrace-enabled flow, 2 x 32 PS, separation -------------------------
    soc_2 = Soc(WfasicConfig(num_aligners=2, parallel_sections=32, backtrace=True))
    acc_2 = soc_2.run_accelerated(pairs, backtrace=True, separate=True)

    return SetMeasurement(
        name=name,
        num_pairs=n,
        max_read_len=acc_n.batch.max_read_len,
        reading_cycles=acc_n.batch.reading_cycles_per_pair,
        align_cycles_nbt=list(acc_n.batch.alignment_cycles),
        accel_nbt_total=acc_n.total_cycles,
        accel_bt_nosep_total=acc_b.total_cycles,
        accel_bt_nosep_accel=acc_b.accelerator_cycles,
        accel_bt_nosep_cpu=acc_b.cpu_backtrace_cycles,
        accel_bt_sep_total=accel_bt_sep_total,
        accel_bt_2x32_sep_total=acc_2.total_cycles,
        cpu_scalar_cycles=cpu_scalar.cycles,
        cpu_vector_cycles=cpu_vector.cycles,
        swg_cells=cells,
        extras={
            "accel_bt_2x32_accel": acc_2.accelerator_cycles,
            "accel_bt_2x32_cpu": acc_2.cpu_backtrace_cycles,
            "bt_txns_per_pair": len(stream) // 16 // n,
        },
    )


@pytest.fixture(scope="session")
def measurements() -> dict[str, SetMeasurement]:
    """Lazy per-set measurement cache shared by all bench files."""

    cache: dict[str, SetMeasurement] = {}

    class Lazy(dict):
        def __missing__(self, key):
            if key not in input_set_names():
                raise KeyError(key)
            value = _measure(key)
            self[key] = value
            return value

    lazy = Lazy(cache)
    return lazy


REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = RESULTS_DIR / "BENCH_pr2.json"
BENCH_JSON_PR4 = RESULTS_DIR / "BENCH_pr4.json"
BENCH_JSON_PR6 = RESULTS_DIR / "BENCH_pr6.json"
BENCH_JSON_PR7 = RESULTS_DIR / "BENCH_pr7.json"
BENCH_JSON_PR8 = RESULTS_DIR / "BENCH_pr8.json"
BENCH_JSON_PR9 = RESULTS_DIR / "BENCH_pr9.json"


def _bench_recorder(path: Path):
    """A section recorder for one ``BENCH_*.json`` file.

    Each bench records a named section; sections from earlier runs are
    preserved so the fast and slow suites can fill the file piecemeal.
    The canonical copy lives under ``benchmarks/results/`` and is
    mirrored to the repository root after every write, so the root
    ``BENCH_*.json`` files always hold the latest full document.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}

    def _record(section: str, payload: dict) -> None:
        data[section] = payload
        doc = json.dumps(data, indent=2, sort_keys=True) + "\n"
        path.write_text(doc)
        (REPO_ROOT / path.name).write_text(doc)

    return _record


@pytest.fixture(scope="session")
def bench_json():
    """Merge machine-readable results into ``BENCH_pr2.json``."""
    return _bench_recorder(BENCH_JSON)


@pytest.fixture(scope="session")
def bench_json_pr4():
    """Merge machine-readable results into ``BENCH_pr4.json``."""
    return _bench_recorder(BENCH_JSON_PR4)


@pytest.fixture(scope="session")
def bench_json_pr6():
    """Merge machine-readable results into ``BENCH_pr6.json``."""
    return _bench_recorder(BENCH_JSON_PR6)


@pytest.fixture(scope="session")
def bench_json_pr7():
    """Merge machine-readable results into ``BENCH_pr7.json``."""
    return _bench_recorder(BENCH_JSON_PR7)


@pytest.fixture(scope="session")
def bench_json_pr8():
    """Merge machine-readable results into ``BENCH_pr8.json``."""
    return _bench_recorder(BENCH_JSON_PR8)


@pytest.fixture(scope="session")
def bench_json_pr9():
    """Merge machine-readable results into ``BENCH_pr9.json``."""
    return _bench_recorder(BENCH_JSON_PR9)


@pytest.fixture(scope="session")
def report_table():
    """Print a table and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "benchmark_tables.txt"
    # Truncate once per session.
    path.write_text("")

    def _report(text: str) -> None:
        print("\n" + text)
        with open(path, "a") as fh:
            fh.write(text + "\n\n")

    return _report
