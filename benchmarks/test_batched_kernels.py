"""Cross-pair batched WFA kernels vs the per-pair software engines.

Three measurements on the pure software alignment path (no cycle model):

* **Short-read batch** — the PR's acceptance workload: one chunk of
  distinct short reads, backtrace off, each backend timed on exactly the
  same ``align_chunk`` call the engine workers make.  The ``batched``
  backend must deliver >= 2x the pairs/s of ``vectorized`` — the batched
  kernels amortise numpy dispatch over the whole chunk where the
  per-pair vectorised aligner pays it per wavefront.
* **Read-length sweep** (slow) — scalar / vectorized / batched across
  read lengths, showing where each backend wins (scalar at very short
  reads, batched everywhere, vectorized only once wavefronts get wide).
* **Stage profile** — the batched backend run through the engine with
  profiling on, so the per-stage table (pack / compute / extend /
  backtrace / dispatch / ipc) lands next to the throughput numbers.

Every measurement is also written machine-readably to
``benchmarks/results/BENCH_pr2.json`` (pairs/s and GCUPS per backend)
via the ``bench_json`` fixture.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.align import DEFAULT_PENALTIES
from repro.engine import align_pairs
from repro.engine.backends import get_backend
from repro.reporting import format_table
from repro.workloads import PairGenerator

#: Pairs in the acceptance chunk (distinct; no cache/coalesce effects).
BATCH_PAIRS = int(os.environ.get("REPRO_BATCH_BENCH_PAIRS", "96"))
READ_LEN = 150
ERROR_RATE = 0.05
BACKENDS = ("scalar", "vectorized", "batched")


def _workload(num_pairs: int, length: int, seed: int = 13):
    gen = PairGenerator(length=length, error_rate=ERROR_RATE, seed=seed)
    return gen.batch(num_pairs)


def _measure_chunk(name: str, pairs, *, backtrace: bool = False,
                   repeats: int = 3):
    """Best-of-N timing of one backend over one whole chunk."""
    backend = get_backend(name)
    items = [(i, p.pattern, p.text) for i, p in enumerate(pairs)]
    best = float("inf")
    outcomes = None
    for _ in range(repeats):
        start = time.perf_counter()
        outcomes = backend.align_chunk(items, DEFAULT_PENALTIES, backtrace)
        best = min(best, time.perf_counter() - start)
    scores = [o.score for o in sorted(outcomes, key=lambda o: o.slot)]
    return best, scores


def _stats(pairs, seconds: float) -> dict:
    cells = sum(len(p.pattern) * len(p.text) for p in pairs)
    return {
        "seconds": round(seconds, 6),
        "pairs_per_second": round(len(pairs) / seconds, 1),
        "gcups": round(cells / seconds / 1e9, 6),
    }


def test_batched_beats_vectorized_on_short_reads(report_table, bench_json):
    pairs = _workload(BATCH_PAIRS, READ_LEN)
    results = {}
    scores = {}
    for name in BACKENDS:
        seconds, backend_scores = _measure_chunk(name, pairs)
        results[name] = _stats(pairs, seconds)
        scores[name] = backend_scores

    assert scores["batched"] == scores["scalar"] == scores["vectorized"]

    rows = [
        [name, f"{r['seconds']:.3f}", f"{r['pairs_per_second']:.0f}",
         f"{r['gcups']:.4f}"]
        for name, r in results.items()
    ]
    speedup = (results["batched"]["pairs_per_second"]
               / results["vectorized"]["pairs_per_second"])
    rows.append(["batched / vectorized", f"{speedup:.2f}x", "", ""])
    report_table(format_table(
        ["backend", "seconds", "pairs/s", "GCUPS"],
        rows,
        title=f"Batched kernel throughput: {BATCH_PAIRS} pairs, "
              f"{READ_LEN} bp, {ERROR_RATE:.0%} error, score-only",
    ))

    bench_json("short_read_batch", {
        "workload": {
            "num_pairs": BATCH_PAIRS,
            "read_length": READ_LEN,
            "error_rate": ERROR_RATE,
            "backtrace": False,
        },
        "backends": results,
        "batched_vs_vectorized_speedup": round(speedup, 2),
    })

    assert speedup >= 2.0, (
        f"batched backend only {speedup:.2f}x over vectorized "
        f"(acceptance bar is 2x): {results}"
    )


def test_batched_stage_profile(report_table, bench_json):
    pairs = _workload(BATCH_PAIRS, READ_LEN)
    res = align_pairs(
        pairs, backend="batched", backtrace=True, cache_size=0
    )
    rep = res.report
    for stage in ("pack", "compute", "extend", "backtrace", "dispatch"):
        assert stage in rep.profile, rep.profile
    report_table(
        f"Batched backend stage profile: {BATCH_PAIRS} pairs, "
        f"{READ_LEN} bp, backtrace on\n" + rep.describe_profile()
    )
    bench_json("batched_stage_profile", {
        "workload": {
            "num_pairs": BATCH_PAIRS,
            "read_length": READ_LEN,
            "error_rate": ERROR_RATE,
            "backtrace": True,
        },
        "pairs_per_second": round(rep.pairs_per_second, 1),
        "gcups": round(rep.gcups, 6),
        "stages": rep.profile,
    })


@pytest.mark.slow
def test_read_length_sweep(report_table, bench_json):
    lengths = (60, 150, 400, 1000)
    sweep = {}
    rows = []
    for length in lengths:
        # Keep total work roughly constant across lengths.
        n = max(4, BATCH_PAIRS * READ_LEN // length)
        pairs = _workload(n, length, seed=17 + length)
        per_backend = {}
        scores = {}
        for name in BACKENDS:
            seconds, backend_scores = _measure_chunk(
                name, pairs, repeats=2
            )
            per_backend[name] = _stats(pairs, seconds)
            scores[name] = backend_scores
        assert scores["batched"] == scores["scalar"] == scores["vectorized"]
        sweep[str(length)] = {"num_pairs": n, "backends": per_backend}
        rows.append([
            length, n,
            *(f"{per_backend[b]['pairs_per_second']:.0f}" for b in BACKENDS),
            f"{per_backend['batched']['pairs_per_second'] / per_backend['vectorized']['pairs_per_second']:.2f}x",
        ])
    report_table(format_table(
        ["read len", "pairs", *BACKENDS, "batched/vec"],
        rows,
        title=f"Read-length sweep (pairs/s, {ERROR_RATE:.0%} error, "
              "score-only)",
    ))
    bench_json("read_length_sweep", {
        "error_rate": ERROR_RATE,
        "lengths": sweep,
    })
