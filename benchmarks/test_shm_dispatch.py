"""Zero-copy dispatch tax vs the pickled chunk protocol.

The PR 6 acceptance measurement: on the parallel path the engine's
non-compute overhead — ``dispatch`` (descriptor interning, ring setup,
payload build) plus ``ipc`` (execute wall time no worker accounts
for) — must stay **under 10 % of batch wall time** on the BENCH_pr2
workloads (150 bp and 1 kbp reads), and no worse than the pickled
path it replaces.  The same run records the payload-size collapse:
what ``pickle.dumps`` actually ships per chunk once sequences become
``(arena_id, offset, length)`` descriptors (``docs/shared-memory.md``).

Results land machine-readably in ``benchmarks/results/BENCH_pr6.json``
(mirrored to the repository root) via the ``bench_json_pr6`` fixture.
"""

from __future__ import annotations

import pickle

from repro.align.arena import SequenceArena
from repro.engine import BatchAlignmentEngine, EngineConfig
from repro.reporting import format_table
from repro.workloads import PairGenerator

ERROR_RATE = 0.05

#: The BENCH_pr2 workloads: the short-read acceptance chunk and the
#: long-read end of the read-length sweep (same pair budget heuristic).
WORKLOADS = (
    {"read_length": 150, "num_pairs": 96, "seed": 13},
    {"read_length": 1000, "num_pairs": 14, "seed": 1017},
)

#: The acceptance bar: dispatch + ipc as a fraction of batch wall time.
MAX_OVERHEAD_SHARE = 0.10


def _workload(spec):
    gen = PairGenerator(
        length=spec["read_length"], error_rate=ERROR_RATE, seed=spec["seed"]
    )
    return gen.batch(spec["num_pairs"])


def _best_report(pairs, *, shared_memory: bool, repeats: int = 3):
    """Best-of-N engine run with a warmed pool (and arena, on shm)."""
    config = EngineConfig(
        backend="batched", workers=2, chunk_size=16, cache_size=0,
        backtrace=True, shared_memory=shared_memory,
    )
    with BatchAlignmentEngine(config) as engine:
        engine.align_batch(pairs)  # warm: pool spawn + arena interning
        best = None
        for _ in range(repeats):
            report = engine.align_batch(pairs).report
            if best is None or report.elapsed_seconds < best.elapsed_seconds:
                best = report
    return best


def _overhead_share(report) -> float:
    overhead = sum(
        report.profile[stage]["seconds"]
        for stage in ("dispatch", "ipc")
        if stage in report.profile
    )
    return overhead / report.elapsed_seconds


def _payload_bytes(pairs) -> dict:
    """What pickle ships per chunk item on each protocol."""
    pickled = len(pickle.dumps(
        [(i, p.pattern, p.text) for i, p in enumerate(pairs)]
    ))
    with SequenceArena() as arena:
        descriptors = len(pickle.dumps([
            (i, arena.intern(p.pattern), arena.intern(p.text), 0, 0)
            for i, p in enumerate(pairs)
        ]))
    return {
        "pickled_items_bytes": pickled,
        "descriptor_items_bytes": descriptors,
        "descriptor_to_pickled_ratio": round(descriptors / pickled, 4),
    }


def test_shm_dispatch_overhead_under_bar(report_table, bench_json_pr6):
    sections = {}
    rows = []
    for spec in WORKLOADS:
        pairs = _workload(spec)
        shm = _best_report(pairs, shared_memory=True)
        pickled = _best_report(pairs, shared_memory=False)
        shm_share = _overhead_share(shm)
        pickled_share = _overhead_share(pickled)
        payload = _payload_bytes(pairs)

        label = f"{spec['read_length']}bp"
        sections[label] = {
            "workload": dict(spec, error_rate=ERROR_RATE, backtrace=True),
            "shm": {
                "elapsed_seconds": round(shm.elapsed_seconds, 6),
                "pairs_per_second": round(shm.pairs_per_second, 1),
                "dispatch_ipc_share": round(shm_share, 4),
                "stages": shm.profile,
            },
            "pickled": {
                "elapsed_seconds": round(pickled.elapsed_seconds, 6),
                "pairs_per_second": round(pickled.pairs_per_second, 1),
                "dispatch_ipc_share": round(pickled_share, 4),
                "stages": pickled.profile,
            },
            "payload": payload,
        }
        rows.append([
            label,
            f"{shm.elapsed_seconds:.3f}",
            f"{shm_share:.1%}",
            f"{pickled_share:.1%}",
            f"{payload['descriptor_to_pickled_ratio']:.2f}x",
        ])

        # The acceptance bar, per workload: under 10 % of wall time and
        # no worse than the pickled protocol it replaces (a generous
        # slack term absorbs single-core scheduling jitter).
        assert shm_share < MAX_OVERHEAD_SHARE, (
            f"{label}: zero-copy dispatch+ipc is {shm_share:.1%} of wall "
            f"time (bar: {MAX_OVERHEAD_SHARE:.0%}): {shm.profile}"
        )
        assert shm_share < max(MAX_OVERHEAD_SHARE, 2 * pickled_share + 0.02)

    report_table(format_table(
        ["workload", "shm seconds", "shm disp+ipc", "pickled disp+ipc",
         "descriptor/pickled bytes"],
        rows,
        title="Zero-copy dispatch tax (workers=2, chunk 16, backtrace on, "
              "best of 3)",
    ))
    bench_json_pr6("shm_dispatch_overhead", {
        "bar": MAX_OVERHEAD_SHARE,
        "workloads": sections,
    })
